"""Registry of named, seeded discovery workloads with known ground truth.

The ROADMAP's north star asks for "as many scenarios as you can imagine";
this module is where they live.  Each :class:`Scenario` is a generative
workload — a seeded builder that produces a contingency table plus the
exact set of constraint keys a perfect discovery run would adopt — along
with per-scenario :class:`ConformanceGates` that CI enforces in smoke mode
(``REPRO_BENCH_SMOKE=1``) and benchmarks track at full size.

The built-in matrix spans the structural axes that stress different parts
of the pipeline: a null world (false-alarm control), a single strong
pairwise link, chained pairwise dependencies, a genuine order-3
interaction, a near-deterministic rule, heavily skewed margins,
high-cardinality attributes, sparse counts, EM-completed missing data, and
a drifting stream accumulated through :class:`~repro.data.streaming.TableBuilder`.

Scenarios are deterministic: the builder receives a generator seeded with
``Scenario.seed``, so two builds of the same scenario at the same size
produce identical tables — which is what lets the conformance gates be
exact assertions rather than statistical hopes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.missing import MISSING, IncompleteDataset, complete_table
from repro.data.streaming import TableBuilder
from repro.exceptions import DataError
from repro.maxent.constraints import CellKey
from repro.synth.generators import (
    PlantedPopulation,
    build_planted_population,
    chained_population,
    drifted_margins,
    independent_population,
    near_deterministic_population,
    random_planted_population,
    skewed_population,
)
from repro.synth.surveys import medical_survey_population, telemetry_population

__all__ = [
    "ConformanceGates",
    "Scenario",
    "ScenarioInstance",
    "all_scenarios",
    "get_scenario",
    "register",
    "scenario_names",
    "unregister",
]


@dataclass(frozen=True)
class ConformanceGates:
    """Machine-checkable quality floor for one scenario.

    ``min_precision`` / ``min_recall`` bound the recovery of the planted
    ground truth; ``max_kl`` bounds KL(empirical ‖ fitted) in nats (how
    much of the sample the fitted model fails to explain);
    ``max_false_alarms`` caps adoptions outside the ground truth (the only
    meaningful gate for the null scenario).  Gates apply in both smoke and
    full modes — scenario sizes are chosen so the smoke run already meets
    them with headroom.
    """

    min_precision: float = 0.0
    min_recall: float = 0.0
    max_kl: float = float("inf")
    max_false_alarms: int | None = None

    def __post_init__(self) -> None:
        for name in ("min_precision", "min_recall"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DataError(f"{name} must be in [0, 1], got {value}")
        if self.max_kl <= 0:
            raise DataError(f"max_kl must be positive, got {self.max_kl}")
        if self.max_false_alarms is not None and self.max_false_alarms < 0:
            raise DataError(
                f"max_false_alarms must be >= 0, got {self.max_false_alarms}"
            )


@dataclass
class ScenarioInstance:
    """One materialized workload: the table discovery sees plus the truth.

    ``truth`` holds the constraint keys of the planted structure;
    ``population`` is kept when the instance came from a
    :class:`~repro.synth.generators.PlantedPopulation` so callers can
    inspect the generating joint.
    """

    table: ContingencyTable
    truth: frozenset[CellKey]
    population: PlantedPopulation | None = None


#: Signature of a scenario builder: seeded generator + sample size in,
#: materialized instance out.
ScenarioBuilder = Callable[[np.random.Generator, int], ScenarioInstance]


@dataclass(frozen=True)
class Scenario:
    """A named, seeded, generative discovery workload.

    ``gates`` is the smoke-mode contract CI enforces.  ``full_gates``
    (defaulting to ``gates``) covers full-size runs, where the strict
    exact-key scoring convention legitimately reports lower precision: a
    planted cell shifts adjacent cells of the same marginal, and with
    enough samples those genuinely shifted neighbours become significant
    too, counting as "false" alarms even though the joint really moved.
    """

    name: str
    description: str
    seed: int
    builder: ScenarioBuilder
    max_order: int = 2
    smoke_samples: int = 4000
    full_samples: int = 40000
    gates: ConformanceGates = field(default_factory=ConformanceGates)
    full_gates: ConformanceGates | None = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise DataError(
                f"scenario name must be non-empty without whitespace, "
                f"got {self.name!r}"
            )
        if self.max_order < 2:
            raise DataError(f"max_order must be >= 2, got {self.max_order}")
        if self.smoke_samples < 1 or self.full_samples < self.smoke_samples:
            raise DataError(
                "need 1 <= smoke_samples <= full_samples, got "
                f"{self.smoke_samples} / {self.full_samples}"
            )

    def sample_size(self, smoke: bool) -> int:
        return self.smoke_samples if smoke else self.full_samples

    def gates_for(self, smoke: bool) -> ConformanceGates:
        if smoke or self.full_gates is None:
            return self.gates
        return self.full_gates

    def build(self, smoke: bool = True) -> ScenarioInstance:
        """Materialize the workload (deterministic for a given size)."""
        rng = np.random.default_rng(self.seed)
        return self.builder(rng, self.sample_size(smoke))


# -- registry ----------------------------------------------------------------------

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry; duplicate names are an error."""
    if scenario.name in _REGISTRY:
        raise DataError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove a scenario (mainly for tests registering temporaries)."""
    if name not in _REGISTRY:
        raise DataError(f"no scenario named {name!r}")
    del _REGISTRY[name]


def get_scenario(name: str) -> Scenario:
    if name not in _REGISTRY:
        raise DataError(
            f"no scenario named {name!r}; registered: {scenario_names()}"
        )
    return _REGISTRY[name]


def scenario_names() -> list[str]:
    """Registered names, in registration order."""
    return list(_REGISTRY)


def all_scenarios() -> Iterator[Scenario]:
    yield from _REGISTRY.values()


# -- built-in scenario builders ----------------------------------------------------


def _population_instance(
    population: PlantedPopulation, rng: np.random.Generator, n: int
) -> ScenarioInstance:
    return ScenarioInstance(
        table=population.sample_table(n, rng),
        truth=frozenset(population.planted_keys()),
        population=population,
    )


def _independence(rng: np.random.Generator, n: int) -> ScenarioInstance:
    return _population_instance(independent_population(rng, 4), rng, n)


def _single_pairwise(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = random_planted_population(
        rng, num_attributes=4, num_planted=1, strength=4.0, order=2
    )
    return _population_instance(population, rng, n)


def _chained_pairwise(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = chained_population(rng, num_attributes=5, strength=3.5)
    return _population_instance(population, rng, n)


def _order3_interaction(rng: np.random.Generator, n: int) -> ScenarioInstance:
    return _population_instance(medical_survey_population(), rng, n)


def _near_deterministic(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = near_deterministic_population(rng, strength=40.0)
    return _population_instance(population, rng, n)


def _skewed_marginals(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = skewed_population(
        rng, num_attributes=4, skew=8.0, num_planted=1, strength=5.0
    )
    return _population_instance(population, rng, n)


def _high_cardinality(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = random_planted_population(
        rng,
        num_attributes=3,
        num_planted=2,
        strength=4.0,
        order=2,
        min_values=5,
        max_values=6,
    )
    return _population_instance(population, rng, n)


def _sparse_counts(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = random_planted_population(
        rng, num_attributes=5, num_planted=2, strength=3.0, order=2
    )
    return _population_instance(population, rng, n)


def _missing_data(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """Telemetry samples with 15% MCAR blanks, EM-completed before discovery."""
    population = telemetry_population()
    dataset = population.sample(n, rng)
    rows = np.array(dataset.rows)
    mask = rng.random(rows.shape) < 0.15
    # Never blank out an entire sample; EM needs at least one observed field.
    all_missing = mask.all(axis=1)
    mask[all_missing, 0] = False
    rows[mask] = MISSING
    incomplete = IncompleteDataset(population.schema, rows)
    table, _em = complete_table(incomplete)
    return ScenarioInstance(
        table=table,
        truth=frozenset(population.planted_keys()),
        population=population,
    )


def _streaming_drift(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """Two stream phases with drifted margins but stable planted structure.

    The associations (what discovery should find) persist across the
    drift; only the margins move.  The table accumulates through
    :class:`~repro.data.streaming.TableBuilder`, the ingestion path the
    lifecycle layer uses.
    """
    base = chained_population(rng, num_attributes=4, strength=3.5)
    margins = {
        name: base.joint.sum(
            axis=tuple(a for a in range(len(base.schema)) if a != axis)
        )
        for axis, name in enumerate(base.schema.names)
    }
    shifted = build_planted_population(
        base.schema, drifted_margins(rng, margins, drift=0.5), base.planted
    )
    builder = TableBuilder(base.schema)
    first = n // 2
    builder.add_table(base.sample_table(first, rng))
    builder.add_table(shifted.sample_table(n - first, rng))
    return ScenarioInstance(
        table=builder.snapshot(),
        truth=frozenset(base.planted_keys()),
        population=base,
    )


def _register_builtins() -> None:
    register(
        Scenario(
            name="independence",
            description="4 independent attributes; nothing to find "
            "(false-alarm control)",
            seed=101,
            builder=_independence,
            max_order=3,
            gates=ConformanceGates(
                min_precision=1.0,
                min_recall=1.0,
                max_kl=0.05,
                max_false_alarms=0,
            ),
            tags=("null", "order2"),
        )
    )
    register(
        Scenario(
            name="single-pairwise",
            description="one strong planted order-2 cell among 4 attributes",
            seed=202,
            builder=_single_pairwise,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=1.0, max_kl=0.05
            ),
            tags=("order2",),
        )
    )
    register(
        Scenario(
            name="chained-pairwise",
            description="order-2 dependencies chained along 5 attributes "
            "(A-B, B-C, C-D, D-E)",
            seed=303,
            builder=_chained_pairwise,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=0.75, max_kl=0.08
            ),
            tags=("order2", "chain"),
        )
    )
    register(
        Scenario(
            name="order3-interaction",
            description="medical-survey world with two order-2 links and "
            "one genuine order-3 interaction",
            seed=404,
            builder=_order3_interaction,
            max_order=3,
            gates=ConformanceGates(
                min_precision=0.4, min_recall=0.66, max_kl=0.05
            ),
            full_gates=ConformanceGates(
                min_precision=0.1, min_recall=1.0, max_kl=0.01
            ),
            tags=("order3",),
        )
    )
    register(
        Scenario(
            name="near-deterministic",
            description="one pair boosted ~40x: an almost-deterministic "
            "IF-THEN rule",
            seed=505,
            builder=_near_deterministic,
            max_order=2,
            # A near-saturated pair genuinely shifts its whole 2-D
            # marginal, so the strict exact-key convention counts the
            # adjacent cells as false alarms; the gate asks for the rule
            # itself (recall 1.0) with bounded collateral adoptions.
            gates=ConformanceGates(
                min_precision=0.25, min_recall=1.0, max_kl=0.05
            ),
            tags=("order2", "extreme"),
        )
    )
    register(
        Scenario(
            name="skewed-marginals",
            description="margins dominated by one value; planted link in "
            "the rare corner",
            seed=606,
            builder=_skewed_marginals,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=1.0, max_kl=0.05
            ),
            tags=("order2", "skew"),
        )
    )
    register(
        Scenario(
            name="high-cardinality",
            description="3 attributes with 5-6 values each (large candidate "
            "pools per subset)",
            seed=707,
            builder=_high_cardinality,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=1.0, max_kl=0.08
            ),
            tags=("order2", "cardinality"),
        )
    )
    register(
        Scenario(
            name="sparse-counts",
            description="5 attributes at a deliberately small sample size; "
            "tests false-alarm control when counts are thin",
            seed=808,
            builder=_sparse_counts,
            max_order=2,
            smoke_samples=500,
            full_samples=1500,
            # Thin counts keep this scenario's discovery conservative (it
            # may legitimately find nothing, scoring precision 0.0), so
            # the gates bound false alarms and fit quality, not recovery.
            gates=ConformanceGates(max_kl=0.30, max_false_alarms=2),
            full_gates=ConformanceGates(max_kl=0.15, max_false_alarms=2),
            tags=("order2", "sparse"),
        )
    )
    register(
        Scenario(
            name="missing-data",
            description="telemetry world with 15% MCAR blanks, EM-completed "
            "before discovery",
            seed=909,
            builder=_missing_data,
            max_order=3,
            smoke_samples=3000,
            full_samples=20000,
            gates=ConformanceGates(
                min_precision=0.4, min_recall=0.5, max_kl=0.05
            ),
            full_gates=ConformanceGates(
                min_precision=0.15, min_recall=1.0, max_kl=0.01
            ),
            tags=("order3", "missing"),
        )
    )
    register(
        Scenario(
            name="streaming-drift",
            description="two stream phases with drifted margins but stable "
            "planted links, merged via TableBuilder",
            seed=1010,
            builder=_streaming_drift,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=0.66, max_kl=0.08
            ),
            tags=("order2", "streaming"),
        )
    )


_register_builtins()
