"""Registry of named, seeded discovery workloads with known ground truth.

The ROADMAP's north star asks for "as many scenarios as you can imagine";
this module is where they live.  Each :class:`Scenario` is a generative
workload — a seeded builder that produces a contingency table plus the
exact set of constraint keys a perfect discovery run would adopt — along
with per-scenario :class:`ConformanceGates` that CI enforces in smoke mode
(``REPRO_BENCH_SMOKE=1``) and benchmarks track at full size.

Scenarios are grouped into **tiers** (:data:`TIERS`) that weight the
workload rather than the sample size: the ``smoke`` tier is the original
friendly matrix, the ``full`` tier adds adversarial structure (wide
worlds, order-4 interactions, Zipf cardinality, corruptions), and the
``stress`` tier holds the heavy workloads only the nightly stress matrix
runs.  Orthogonally, every scenario still has smoke/full *sample sizes*
selected by the ``smoke`` flag.

Besides quality gates, each scenario carries a :class:`LatencySLO` —
p50/p99 budgets per discovery stage (scan/fit/verify, measured by
:class:`~repro.significance.kernels.DiscoveryProfile`) plus p50/p99
budgets for replayed query traffic — so the fleet validates *scale* as
well as *quality*.  Budgets are generous (order-of-magnitude guards, not
noise detectors) and scale with the tier.

Scenarios are deterministic: the builder receives a generator seeded with
``Scenario.seed``, so two builds of the same scenario at the same size
produce identical tables — which is what lets the conformance gates be
exact assertions rather than statistical hopes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field, fields

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.missing import MISSING, IncompleteDataset, complete_table
from repro.data.streaming import TableBuilder
from repro.exceptions import DataError
from repro.maxent.constraints import CellKey
from repro.synth.adversarial import (
    apply_label_noise,
    correlated_drifted_margins,
    duplicate_rows,
    heavy_tailed_population,
    high_order_population,
    near_singular_population,
    orbit_truth,
    wide_population,
)
from repro.synth.generators import (
    PlantedCell,
    PlantedPopulation,
    build_planted_population,
    chained_population,
    drifted_margins,
    independent_population,
    near_deterministic_population,
    random_margins,
    random_planted_population,
    random_schema,
    skewed_population,
)
from repro.synth.surveys import medical_survey_population, telemetry_population

__all__ = [
    "DEFAULT_TIERS",
    "TIERS",
    "ConformanceGates",
    "LatencySLO",
    "Scenario",
    "ScenarioInstance",
    "all_scenarios",
    "default_slo",
    "get_scenario",
    "register",
    "scenario_names",
    "unregister",
]

#: Recognized workload tiers, lightest first.  ``smoke`` and ``full`` run
#: in CI on every push; ``stress`` is reserved for the nightly matrix.
TIERS = ("smoke", "full", "stress")

#: Tiers included when a caller does not ask for specific ones.  The
#: stress tier is deliberately opt-in (``--tier stress`` / ``--tier all``).
DEFAULT_TIERS = ("smoke", "full")

#: Multiplier applied to a scenario's smoke-mode SLO when it runs at full
#: sample size and no explicit ``full_slo`` was registered.  Stage costs
#: are dominated by table dimensions rather than sample count, so a small
#: constant headroom suffices.
FULL_SLO_SCALE = 4.0


@dataclass(frozen=True)
class LatencySLO:
    """Per-stage latency budgets, in milliseconds (``None`` = ungated).

    ``scan``/``fit``/``verify`` budgets bound the per-call latency
    percentiles recorded by
    :class:`~repro.significance.kernels.DiscoveryProfile`; ``query``
    budgets bound the closed-loop query-traffic replay
    (:func:`repro.scenarios.replay.replay_session`) that each scenario
    drives against a :class:`~repro.api.session.QuerySession` after
    discovery.  Budgets are order-of-magnitude guards: they catch a
    stage whose latency regressed 10x, not CI jitter.
    """

    scan_p50_ms: float | None = None
    scan_p99_ms: float | None = None
    fit_p50_ms: float | None = None
    fit_p99_ms: float | None = None
    verify_p50_ms: float | None = None
    verify_p99_ms: float | None = None
    query_p50_ms: float | None = None
    query_p99_ms: float | None = None

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is not None and value <= 0:
                raise DataError(
                    f"{spec.name} must be positive or None, got {value}"
                )
        for stage in ("scan", "fit", "verify", "query"):
            p50 = getattr(self, f"{stage}_p50_ms")
            p99 = getattr(self, f"{stage}_p99_ms")
            if p50 is not None and p99 is not None and p50 > p99:
                raise DataError(
                    f"{stage} p50 budget ({p50}) exceeds p99 budget ({p99})"
                )

    def scaled(self, factor: float) -> LatencySLO:
        """A copy with every set budget multiplied by ``factor``."""
        if factor <= 0:
            raise DataError(f"SLO scale factor must be positive, got {factor}")
        return LatencySLO(
            **{
                spec.name: (
                    None
                    if getattr(self, spec.name) is None
                    else getattr(self, spec.name) * factor
                )
                for spec in fields(self)
            }
        )

    def budgets(self) -> list[tuple[str, float, float]]:
        """Set budgets as ``(stage, quantile, budget_ms)`` triples."""
        out = []
        for stage in ("scan", "fit", "verify", "query"):
            for q, label in ((0.50, "p50"), (0.99, "p99")):
                value = getattr(self, f"{stage}_{label}_ms")
                if value is not None:
                    out.append((stage, q, float(value)))
        return out

    def describe(self) -> str:
        """Compact one-line rendering, e.g. ``scan p99<=2000ms``."""
        parts = []
        for stage in ("scan", "fit", "verify", "query"):
            for label in ("p50", "p99"):
                value = getattr(self, f"{stage}_{label}_ms")
                if value is not None:
                    parts.append(f"{stage} {label}<={value:g}ms")
        return " ".join(parts) if parts else "ungated"


#: Tier-adaptive default SLOs (smoke-size budgets; full-size runs scale
#: them by :data:`FULL_SLO_SCALE`).  Heavier tiers get wider budgets —
#: the gates adapt per tier instead of applying one global bar.
_TIER_SLOS = {
    "smoke": LatencySLO(
        scan_p99_ms=2500.0,
        fit_p99_ms=2500.0,
        verify_p99_ms=2500.0,
        query_p50_ms=50.0,
        query_p99_ms=250.0,
    ),
    "full": LatencySLO(
        scan_p99_ms=5000.0,
        fit_p99_ms=5000.0,
        verify_p99_ms=5000.0,
        query_p50_ms=100.0,
        query_p99_ms=500.0,
    ),
    "stress": LatencySLO(
        scan_p99_ms=20000.0,
        fit_p99_ms=20000.0,
        verify_p99_ms=20000.0,
        query_p50_ms=250.0,
        query_p99_ms=1500.0,
    ),
}


def default_slo(tier: str) -> LatencySLO:
    """The tier's default latency budgets (see :data:`TIERS`)."""
    if tier not in _TIER_SLOS:
        raise DataError(f"unknown tier {tier!r}; expected one of {TIERS}")
    return _TIER_SLOS[tier]


@dataclass(frozen=True)
class ConformanceGates:
    """Machine-checkable quality floor for one scenario.

    ``min_precision`` / ``min_recall`` bound the recovery of the planted
    ground truth; ``max_kl`` bounds KL(empirical ‖ fitted) in nats (how
    much of the sample the fitted model fails to explain);
    ``max_false_alarms`` caps adoptions outside the ground truth (the only
    meaningful gate for the null scenario).  Gates apply in both smoke and
    full modes — scenario sizes are chosen so the smoke run already meets
    them with headroom.
    """

    min_precision: float = 0.0
    min_recall: float = 0.0
    max_kl: float = float("inf")
    max_false_alarms: int | None = None

    def __post_init__(self) -> None:
        for name in ("min_precision", "min_recall"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DataError(f"{name} must be in [0, 1], got {value}")
        if self.max_kl <= 0:
            raise DataError(f"max_kl must be positive, got {self.max_kl}")
        if self.max_false_alarms is not None and self.max_false_alarms < 0:
            raise DataError(
                f"max_false_alarms must be >= 0, got {self.max_false_alarms}"
            )

    def describe(self) -> str:
        """Compact one-line rendering, e.g. ``P>=0.50 R>=1.00 KL<=0.05``."""
        parts = []
        if self.min_precision > 0:
            parts.append(f"P>={self.min_precision:.2f}")
        if self.min_recall > 0:
            parts.append(f"R>={self.min_recall:.2f}")
        if self.max_kl != float("inf"):
            parts.append(f"KL<={self.max_kl:g}")
        if self.max_false_alarms is not None:
            parts.append(f"FA<={self.max_false_alarms}")
        return " ".join(parts) if parts else "ungated"


@dataclass
class ScenarioInstance:
    """One materialized workload: the table discovery sees plus the truth.

    ``truth`` holds the constraint keys of the planted structure;
    ``population`` is kept when the instance came from a
    :class:`~repro.synth.generators.PlantedPopulation` so callers can
    inspect the generating joint.
    """

    table: ContingencyTable
    truth: frozenset[CellKey]
    population: PlantedPopulation | None = None


#: Signature of a scenario builder: seeded generator + sample size in,
#: materialized instance out.
ScenarioBuilder = Callable[[np.random.Generator, int], ScenarioInstance]


@dataclass(frozen=True)
class Scenario:
    """A named, seeded, generative discovery workload.

    ``gates`` is the smoke-mode contract CI enforces.  ``full_gates``
    (defaulting to ``gates``) covers full-size runs, where the strict
    exact-key scoring convention legitimately reports lower precision: a
    planted cell shifts adjacent cells of the same marginal, and with
    enough samples those genuinely shifted neighbours become significant
    too, counting as "false" alarms even though the joint really moved.

    ``tier`` is the workload weight class (:data:`TIERS`); ``attributes``
    declares the built schema's width (rendered in catalogs and checked
    against the built instance by the registry tests).  ``slo`` /
    ``full_slo`` carry the latency budgets; when unset, the tier default
    (:func:`default_slo`) applies, and an unset ``full_slo`` falls back
    to the smoke SLO scaled by :data:`FULL_SLO_SCALE`.
    """

    name: str
    description: str
    seed: int
    builder: ScenarioBuilder
    max_order: int = 2
    smoke_samples: int = 4000
    full_samples: int = 40000
    gates: ConformanceGates = field(default_factory=ConformanceGates)
    full_gates: ConformanceGates | None = None
    tags: tuple[str, ...] = ()
    tier: str = "smoke"
    attributes: int = 0
    slo: LatencySLO | None = None
    full_slo: LatencySLO | None = None

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise DataError(
                f"scenario name must be non-empty without whitespace, "
                f"got {self.name!r}"
            )
        if self.max_order < 2:
            raise DataError(f"max_order must be >= 2, got {self.max_order}")
        if self.smoke_samples < 1 or self.full_samples < self.smoke_samples:
            raise DataError(
                "need 1 <= smoke_samples <= full_samples, got "
                f"{self.smoke_samples} / {self.full_samples}"
            )
        if self.tier not in TIERS:
            raise DataError(
                f"tier must be one of {TIERS}, got {self.tier!r}"
            )
        if self.attributes < 0:
            raise DataError(
                f"attributes must be >= 0, got {self.attributes}"
            )

    def sample_size(self, smoke: bool) -> int:
        """Sample count for the requested mode."""
        return self.smoke_samples if smoke else self.full_samples

    def gates_for(self, smoke: bool) -> ConformanceGates:
        """Quality gates for the requested mode."""
        if smoke or self.full_gates is None:
            return self.gates
        return self.full_gates

    def slo_for(self, smoke: bool) -> LatencySLO:
        """Latency budgets for the requested mode (tier default if unset)."""
        base = self.slo if self.slo is not None else default_slo(self.tier)
        if smoke:
            return base
        if self.full_slo is not None:
            return self.full_slo
        return base.scaled(FULL_SLO_SCALE)

    def build(self, smoke: bool = True) -> ScenarioInstance:
        """Materialize the workload (deterministic for a given size)."""
        rng = np.random.default_rng(self.seed)
        return self.builder(rng, self.sample_size(smoke))


# -- registry ----------------------------------------------------------------------

_REGISTRY: dict[str, Scenario] = {}


def _normalize_tiers(
    tiers: str | Sequence[str] | None,
) -> tuple[str, ...] | None:
    """Resolve a tier filter; ``None``/"all" mean every tier."""
    if tiers is None:
        return None
    if isinstance(tiers, str):
        tiers = (tiers,)
    resolved = tuple(tiers)
    if "all" in resolved:
        return None
    for tier in resolved:
        if tier not in TIERS:
            raise DataError(
                f"unknown tier {tier!r}; expected one of {TIERS + ('all',)}"
            )
    return resolved


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry; duplicate names are an error."""
    if scenario.name in _REGISTRY:
        raise DataError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove a scenario (mainly for tests registering temporaries)."""
    if name not in _REGISTRY:
        raise DataError(f"no scenario named {name!r}")
    del _REGISTRY[name]


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name (raises DataError when absent)."""
    if name not in _REGISTRY:
        raise DataError(
            f"no scenario named {name!r}; registered: {scenario_names()}"
        )
    return _REGISTRY[name]


def scenario_names(tiers: str | Sequence[str] | None = None) -> list[str]:
    """Registered names in registration order, optionally tier-filtered.

    ``tiers`` may be a single tier name, a sequence of them, ``"all"``,
    or ``None`` (no filter).
    """
    wanted = _normalize_tiers(tiers)
    return [
        name
        for name, scenario in _REGISTRY.items()
        if wanted is None or scenario.tier in wanted
    ]


def all_scenarios(
    tiers: str | Sequence[str] | None = None,
) -> Iterator[Scenario]:
    """Iterate registered scenarios, optionally filtered by tier."""
    wanted = _normalize_tiers(tiers)
    for scenario in _REGISTRY.values():
        if wanted is None or scenario.tier in wanted:
            yield scenario


# -- built-in scenario builders ----------------------------------------------------


def _population_instance(
    population: PlantedPopulation, rng: np.random.Generator, n: int
) -> ScenarioInstance:
    return ScenarioInstance(
        table=population.sample_table(n, rng),
        truth=frozenset(population.planted_keys()),
        population=population,
    )


def _independence(rng: np.random.Generator, n: int) -> ScenarioInstance:
    return _population_instance(independent_population(rng, 4), rng, n)


def _single_pairwise(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = random_planted_population(
        rng, num_attributes=4, num_planted=1, strength=4.0, order=2
    )
    return _population_instance(population, rng, n)


def _chained_pairwise(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = chained_population(rng, num_attributes=5, strength=3.5)
    return _population_instance(population, rng, n)


def _order3_interaction(rng: np.random.Generator, n: int) -> ScenarioInstance:
    return _population_instance(medical_survey_population(), rng, n)


def _near_deterministic(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = near_deterministic_population(rng, strength=40.0)
    return _population_instance(population, rng, n)


def _skewed_marginals(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = skewed_population(
        rng, num_attributes=4, skew=8.0, num_planted=1, strength=5.0
    )
    return _population_instance(population, rng, n)


def _high_cardinality(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = random_planted_population(
        rng,
        num_attributes=3,
        num_planted=2,
        strength=4.0,
        order=2,
        min_values=5,
        max_values=6,
    )
    return _population_instance(population, rng, n)


def _sparse_counts(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = random_planted_population(
        rng, num_attributes=5, num_planted=2, strength=3.0, order=2
    )
    return _population_instance(population, rng, n)


def _missing_data(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """Telemetry samples with 15% MCAR blanks, EM-completed before discovery."""
    population = telemetry_population()
    dataset = population.sample(n, rng)
    rows = np.array(dataset.rows)
    mask = rng.random(rows.shape) < 0.15
    # Never blank out an entire sample; EM needs at least one observed field.
    all_missing = mask.all(axis=1)
    mask[all_missing, 0] = False
    rows[mask] = MISSING
    incomplete = IncompleteDataset(population.schema, rows)
    table, _em = complete_table(incomplete)
    return ScenarioInstance(
        table=table,
        truth=frozenset(population.planted_keys()),
        population=population,
    )


def _streaming_drift(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """Two stream phases with drifted margins but stable planted structure.

    The associations (what discovery should find) persist across the
    drift; only the margins move.  The table accumulates through
    :class:`~repro.data.streaming.TableBuilder`, the ingestion path the
    lifecycle layer uses.
    """
    base = chained_population(rng, num_attributes=4, strength=3.5)
    margins = _population_margins(base)
    shifted = build_planted_population(
        base.schema, drifted_margins(rng, margins, drift=0.5), base.planted
    )
    builder = TableBuilder(base.schema)
    first = n // 2
    builder.add_table(base.sample_table(first, rng))
    builder.add_table(shifted.sample_table(n - first, rng))
    return ScenarioInstance(
        table=builder.snapshot(),
        truth=frozenset(base.planted_keys()),
        population=base,
    )


# -- adversarial (full-tier) builders ----------------------------------------------


def _population_margins(
    population: PlantedPopulation,
) -> dict[str, np.ndarray]:
    """First-order margins of a population's joint, keyed by name."""
    axes = range(len(population.schema))
    return {
        name: population.joint.sum(
            axis=tuple(a for a in axes if a != axis)
        )
        for axis, name in enumerate(population.schema.names)
    }


def _orbit_instance(
    population: PlantedPopulation,
    rng: np.random.Generator,
    n: int,
    include_subsets: bool = False,
) -> ScenarioInstance:
    """Instance whose truth is the planted cells' equivalence orbit.

    Binary planted subsets saturate their whole interaction, so the
    engine may adopt any cell of the orbit (see
    :func:`repro.synth.adversarial.orbit_truth`); scenarios built this
    way gate on precision rather than exact-cell recall.
    """
    return ScenarioInstance(
        table=population.sample_table(n, rng),
        truth=frozenset(orbit_truth(population, include_subsets)),
        population=population,
    )


def _wide_order2(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = wide_population(
        rng, num_attributes=12, num_planted=3, strength=4.0, order=2
    )
    return _orbit_instance(population, rng, n)


def _wide_chain(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = chained_population(rng, num_attributes=8, strength=4.0)
    return _population_instance(population, rng, n)


def _order4_interaction(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = high_order_population(
        rng, num_attributes=6, order=4, strength=6.0, num_planted=1
    )
    return _orbit_instance(population, rng, n, include_subsets=True)


def _zipf_cardinality(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = heavy_tailed_population(
        rng,
        num_attributes=4,
        max_cardinality=8,
        exponent=1.2,
        num_planted=2,
        strength=5.0,
    )
    return _population_instance(population, rng, n)


def _zipf_head_tail(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = heavy_tailed_population(
        rng,
        num_attributes=5,
        max_cardinality=12,
        exponent=1.5,
        num_planted=3,
        strength=6.0,
    )
    return _population_instance(population, rng, n)


def _correlated_drift(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """Two stream phases whose margins drift along one shared latent axis."""
    base = chained_population(rng, num_attributes=4, strength=3.5)
    margins = _population_margins(base)
    shifted = build_planted_population(
        base.schema,
        correlated_drifted_margins(rng, margins, drift=0.4, correlation=0.9),
        base.planted,
    )
    builder = TableBuilder(base.schema)
    first = n // 2
    builder.add_table(base.sample_table(first, rng))
    builder.add_table(shifted.sample_table(n - first, rng))
    return ScenarioInstance(
        table=builder.snapshot(),
        truth=frozenset(base.planted_keys()),
        population=base,
    )


def _near_singular(rng: np.random.Generator, n: int) -> ScenarioInstance:
    # Margin restoration concentrates the planted pair's *relative*
    # deviation in the starved corner cells, so the engine legitimately
    # adopts other cells of the same pair: score the orbit.
    population = near_singular_population(
        rng, num_attributes=4, epsilon=0.004, strength=6.0
    )
    return _orbit_instance(population, rng, n)


def _label_noise(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """A strong planted pair seen through 8% uniform label noise."""
    population = random_planted_population(
        rng, num_attributes=4, num_planted=1, strength=5.0, order=2
    )
    dataset = apply_label_noise(population.sample(n, rng), rng, rate=0.08)
    return ScenarioInstance(
        table=dataset.to_contingency(),
        truth=frozenset(population.planted_keys()),
        population=population,
    )


def _duplicate_rows(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """A planted pair whose dataset is inflated by 30% duplicated rows."""
    population = random_planted_population(
        rng, num_attributes=4, num_planted=1, strength=4.0, order=2
    )
    dataset = duplicate_rows(population.sample(n, rng), rng, fraction=0.3)
    return ScenarioInstance(
        table=dataset.to_contingency(),
        truth=frozenset(population.planted_keys()),
        population=population,
    )


def _dense_pairs(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = random_planted_population(
        rng, num_attributes=5, num_planted=4, strength=4.0, order=2
    )
    return _population_instance(population, rng, n)


def _excess_deficit(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = random_planted_population(
        rng, num_attributes=4, num_planted=2, strength=4.5, order=2
    )
    return _population_instance(population, rng, n)


def _mixed_order(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """An order-2 cell and an order-3 cell planted in the same world."""
    schema = random_schema(rng, 5, min_values=2, max_values=3)
    margins = random_margins(rng, schema)
    names = schema.names
    planted = [
        PlantedCell(
            (names[0], names[1]),
            (
                int(rng.integers(schema.attribute(names[0]).cardinality)),
                int(rng.integers(schema.attribute(names[1]).cardinality)),
            ),
            4.0,
        ),
        PlantedCell(
            (names[2], names[3], names[4]),
            tuple(
                int(rng.integers(schema.attribute(name).cardinality))
                for name in names[2:]
            ),
            6.0,
        ),
    ]
    population = build_planted_population(schema, margins, planted)
    # The order-2 cell is scored exactly; the order-3 cell genuinely
    # shifts its pairwise marginals too, so its truth is the full orbit
    # including sub-subsets (the shadows are real structure, not noise).
    from itertools import combinations, product

    truth = {(planted[0].attributes, planted[0].values)}
    triple = planted[1].attributes
    subsets = [triple] + list(combinations(triple, 2))
    for subset in subsets:
        cards = [schema.attribute(name).cardinality for name in subset]
        for values in product(*(range(c) for c in cards)):
            truth.add((tuple(subset), tuple(values)))
    return ScenarioInstance(
        table=population.sample_table(n, rng),
        truth=frozenset(truth),
        population=population,
    )


def _star_hub(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """One hub attribute pairwise-linked to every other attribute."""
    schema = random_schema(rng, 5, min_values=2, max_values=3)
    margins = random_margins(rng, schema)
    names = schema.names
    hub = names[0]
    planted = [
        PlantedCell(
            (hub, spoke),
            (
                int(rng.integers(schema.attribute(hub).cardinality)),
                int(rng.integers(schema.attribute(spoke).cardinality)),
            ),
            3.5,
        )
        for spoke in names[1:]
    ]
    population = build_planted_population(schema, margins, planted)
    return _population_instance(population, rng, n)


# -- stress-tier builders ----------------------------------------------------------


def _stress_wide_16(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = wide_population(
        rng, num_attributes=16, num_planted=4, strength=4.5, order=2
    )
    return _orbit_instance(population, rng, n)


def _stress_wide_order3(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = wide_population(
        rng, num_attributes=10, num_planted=2, strength=5.0, order=3
    )
    return _orbit_instance(population, rng, n, include_subsets=True)


def _stress_zipf_wide(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = heavy_tailed_population(
        rng,
        num_attributes=6,
        max_cardinality=10,
        exponent=1.1,
        num_planted=3,
        strength=6.0,
    )
    return _population_instance(population, rng, n)


def _stress_order5(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = high_order_population(
        rng, num_attributes=7, order=5, strength=8.0, num_planted=1
    )
    return _orbit_instance(population, rng, n, include_subsets=True)


def _stress_near_singular(rng: np.random.Generator, n: int) -> ScenarioInstance:
    population = near_singular_population(
        rng, num_attributes=5, epsilon=0.002, strength=7.0
    )
    return _orbit_instance(population, rng, n)


def _stress_corrupted(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """Label noise and duplicate rows stacked on one chained world."""
    population = chained_population(rng, num_attributes=4, strength=4.0)
    dataset = population.sample(n, rng)
    dataset = apply_label_noise(dataset, rng, rate=0.05)
    dataset = duplicate_rows(dataset, rng, fraction=0.4)
    return ScenarioInstance(
        table=dataset.to_contingency(),
        truth=frozenset(population.planted_keys()),
        population=population,
    )


def _stress_correlated_drift(
    rng: np.random.Generator, n: int
) -> ScenarioInstance:
    """Three stream phases, each drifting along the same latent direction."""
    base = chained_population(rng, num_attributes=5, strength=4.0)
    builder = TableBuilder(base.schema)
    phases = 3
    margins = _population_margins(base)
    current = base
    for phase in range(phases):
        chunk = n // phases if phase < phases - 1 else n - 2 * (n // phases)
        builder.add_table(current.sample_table(chunk, rng))
        margins = correlated_drifted_margins(
            rng, margins, drift=0.35, correlation=0.9
        )
        current = build_planted_population(base.schema, margins, base.planted)
    return ScenarioInstance(
        table=builder.snapshot(),
        truth=frozenset(base.planted_keys()),
        population=base,
    )


def _stress_churn(rng: np.random.Generator, n: int) -> ScenarioInstance:
    """Eight small stream phases with independently drifting margins."""
    base = chained_population(rng, num_attributes=4, strength=4.0)
    builder = TableBuilder(base.schema)
    phases = 8
    margins = _population_margins(base)
    current = base
    consumed = 0
    for phase in range(phases):
        chunk = n // phases if phase < phases - 1 else n - consumed
        consumed += chunk
        builder.add_table(current.sample_table(chunk, rng))
        margins = drifted_margins(rng, margins, drift=0.25)
        current = build_planted_population(base.schema, margins, base.planted)
    return ScenarioInstance(
        table=builder.snapshot(),
        truth=frozenset(base.planted_keys()),
        population=base,
    )


def _register_builtins() -> None:
    register(
        Scenario(
            name="independence",
            description="4 independent attributes; nothing to find "
            "(false-alarm control)",
            seed=101,
            builder=_independence,
            max_order=3,
            gates=ConformanceGates(
                min_precision=1.0,
                min_recall=1.0,
                max_kl=0.05,
                max_false_alarms=0,
            ),
            tags=("null", "order2"),
            tier="smoke",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="single-pairwise",
            description="one strong planted order-2 cell among 4 attributes",
            seed=202,
            builder=_single_pairwise,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=1.0, max_kl=0.05
            ),
            tags=("order2",),
            tier="smoke",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="chained-pairwise",
            description="order-2 dependencies chained along 5 attributes "
            "(A-B, B-C, C-D, D-E)",
            seed=303,
            builder=_chained_pairwise,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=0.75, max_kl=0.08
            ),
            tags=("order2", "chain"),
            tier="smoke",
            attributes=5,
        )
    )
    register(
        Scenario(
            name="order3-interaction",
            description="medical-survey world with two order-2 links and "
            "one genuine order-3 interaction",
            seed=404,
            builder=_order3_interaction,
            max_order=3,
            gates=ConformanceGates(
                min_precision=0.4, min_recall=0.66, max_kl=0.05
            ),
            full_gates=ConformanceGates(
                min_precision=0.1, min_recall=1.0, max_kl=0.01
            ),
            tags=("order3",),
            tier="smoke",
            attributes=5,
        )
    )
    register(
        Scenario(
            name="near-deterministic",
            description="one pair boosted ~40x: an almost-deterministic "
            "IF-THEN rule",
            seed=505,
            builder=_near_deterministic,
            max_order=2,
            # A near-saturated pair genuinely shifts its whole 2-D
            # marginal, so the strict exact-key convention counts the
            # adjacent cells as false alarms; the gate asks for the rule
            # itself (recall 1.0) with bounded collateral adoptions.
            gates=ConformanceGates(
                min_precision=0.25, min_recall=1.0, max_kl=0.05
            ),
            tags=("order2", "extreme"),
            tier="smoke",
            attributes=3,
        )
    )
    register(
        Scenario(
            name="skewed-marginals",
            description="margins dominated by one value; planted link in "
            "the rare corner",
            seed=606,
            builder=_skewed_marginals,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=1.0, max_kl=0.05
            ),
            tags=("order2", "skew"),
            tier="smoke",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="high-cardinality",
            description="3 attributes with 5-6 values each (large candidate "
            "pools per subset)",
            seed=707,
            builder=_high_cardinality,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=1.0, max_kl=0.08
            ),
            tags=("order2", "cardinality"),
            tier="smoke",
            attributes=3,
        )
    )
    register(
        Scenario(
            name="sparse-counts",
            description="5 attributes at a deliberately small sample size; "
            "tests false-alarm control when counts are thin",
            seed=808,
            builder=_sparse_counts,
            max_order=2,
            smoke_samples=500,
            full_samples=1500,
            # Thin counts keep this scenario's discovery conservative (it
            # may legitimately find nothing, scoring precision 0.0), so
            # the gates bound false alarms and fit quality, not recovery.
            gates=ConformanceGates(max_kl=0.30, max_false_alarms=2),
            full_gates=ConformanceGates(max_kl=0.15, max_false_alarms=2),
            tags=("order2", "sparse"),
            tier="smoke",
            attributes=5,
        )
    )
    register(
        Scenario(
            name="missing-data",
            description="telemetry world with 15% MCAR blanks, EM-completed "
            "before discovery",
            seed=909,
            builder=_missing_data,
            max_order=3,
            smoke_samples=3000,
            full_samples=20000,
            gates=ConformanceGates(
                min_precision=0.4, min_recall=0.5, max_kl=0.05
            ),
            full_gates=ConformanceGates(
                min_precision=0.15, min_recall=1.0, max_kl=0.01
            ),
            tags=("order3", "missing"),
            tier="smoke",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="streaming-drift",
            description="two stream phases with drifted margins but stable "
            "planted links, merged via TableBuilder",
            seed=1010,
            builder=_streaming_drift,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=0.66, max_kl=0.08
            ),
            tags=("order2", "streaming"),
            tier="smoke",
            attributes=4,
        )
    )
    # -- full tier: adversarial structure at CI-friendly sizes --------------
    register(
        Scenario(
            name="wide-order2",
            description="12 binary attributes, 3 planted pairs: wide "
            "candidate pools, sparse signal",
            seed=1111,
            builder=_wide_order2,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.75,
                min_recall=0.15,
                max_kl=0.60,
                max_false_alarms=1,
            ),
            full_gates=ConformanceGates(
                min_precision=0.75,
                min_recall=0.15,
                max_kl=0.15,
                max_false_alarms=1,
            ),
            tags=("order2", "wide"),
            tier="full",
            attributes=12,
        )
    )
    register(
        Scenario(
            name="wide-chain",
            description="order-2 chain along 8 attributes (A-B through G-H)",
            seed=1212,
            builder=_wide_chain,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.35, min_recall=0.35, max_kl=0.30
            ),
            full_gates=ConformanceGates(
                min_precision=0.40, min_recall=0.70, max_kl=0.08
            ),
            tags=("order2", "wide", "chain"),
            tier="full",
            attributes=8,
        )
    )
    register(
        Scenario(
            name="order4-interaction",
            description="one genuine order-4 cell over 6 binary attributes; "
            "all lower margins independent",
            seed=1313,
            builder=_order4_interaction,
            max_order=4,
            gates=ConformanceGates(
                min_precision=0.75,
                min_recall=0.10,
                max_kl=0.15,
                max_false_alarms=2,
            ),
            full_gates=ConformanceGates(
                min_precision=0.75,
                min_recall=0.25,
                max_kl=0.02,
                max_false_alarms=2,
            ),
            tags=("order4", "deep"),
            tier="full",
            attributes=6,
        )
    )
    register(
        Scenario(
            name="zipf-cardinality",
            description="heavy-tailed cardinalities (Zipf 1.2, max 8) with "
            "head-tail planted pairs",
            seed=1414,
            builder=_zipf_cardinality,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.4, min_recall=0.5, max_kl=0.30
            ),
            full_gates=ConformanceGates(
                min_precision=0.25, min_recall=0.5, max_kl=0.05
            ),
            tags=("order2", "zipf", "cardinality"),
            tier="full",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="zipf-head-tail",
            description="5 attributes, Zipf 1.5 value masses up to "
            "cardinality 12; planted cells pair head with tail values",
            seed=1515,
            builder=_zipf_head_tail,
            max_order=2,
            gates=ConformanceGates(max_kl=0.60, max_false_alarms=6),
            full_gates=ConformanceGates(max_kl=0.15, max_false_alarms=6),
            tags=("order2", "zipf", "skew"),
            tier="full",
            attributes=5,
        )
    )
    register(
        Scenario(
            name="correlated-drift",
            description="two stream phases drifting along one shared latent "
            "direction (margins move together)",
            seed=1616,
            builder=_correlated_drift,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.30, min_recall=0.60, max_kl=0.10
            ),
            full_gates=ConformanceGates(
                min_precision=0.10,
                min_recall=0.60,
                max_kl=0.02,
                max_false_alarms=14,
            ),
            tags=("order2", "streaming", "drift"),
            tier="full",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="near-singular",
            description="every margin's last value pinned to 0.4% mass: an "
            "almost-singular contingency table",
            seed=1717,
            builder=_near_singular,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.75, min_recall=0.20, max_kl=0.10
            ),
            full_gates=ConformanceGates(
                min_precision=0.75, min_recall=0.40, max_kl=0.02
            ),
            tags=("order2", "singular", "sparse"),
            tier="full",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="label-noise",
            description="one strong pair seen through 8% uniform label "
            "noise (attenuated but recoverable)",
            seed=1818,
            builder=_label_noise,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=1.0, max_kl=0.08
            ),
            tags=("order2", "corruption", "noise"),
            tier="full",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="duplicate-rows",
            description="dataset inflated by 30% duplicated rows (an iid "
            "violation that overstates evidence)",
            seed=1919,
            builder=_duplicate_rows,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=1.0, max_kl=0.08
            ),
            tags=("order2", "corruption", "duplicates"),
            tier="full",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="dense-pairs",
            description="4 planted pairs among 5 attributes: dense true "
            "structure, precision under load",
            seed=2020,
            builder=_dense_pairs,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=0.5, max_kl=0.15
            ),
            tags=("order2", "dense"),
            tier="full",
            attributes=5,
        )
    )
    register(
        Scenario(
            name="excess-deficit",
            description="one excess and one deficit cell planted together "
            "(multipliers above and below 1)",
            seed=2121,
            builder=_excess_deficit,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.5, min_recall=0.5, max_kl=0.08
            ),
            tags=("order2", "deficit"),
            tier="full",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="mixed-order",
            description="an order-2 cell and an order-3 cell planted in the "
            "same 5-attribute world",
            seed=2222,
            builder=_mixed_order,
            max_order=3,
            gates=ConformanceGates(
                min_precision=0.75, min_recall=0.15, max_kl=0.10
            ),
            full_gates=ConformanceGates(
                min_precision=0.70, min_recall=0.30, max_kl=0.02
            ),
            tags=("order2", "order3", "mixed"),
            tier="full",
            attributes=5,
        )
    )
    register(
        Scenario(
            name="star-hub",
            description="one hub attribute pairwise-linked to all four "
            "spokes (degree-4 dependency star)",
            seed=2323,
            builder=_star_hub,
            max_order=2,
            # The hub's margin genuinely shifts under four planted pairs,
            # so collateral same-pair adoptions depress exact-key
            # precision; the gate asks for every spoke (recall) instead.
            gates=ConformanceGates(
                min_precision=0.25,
                min_recall=0.75,
                max_kl=0.10,
                max_false_alarms=12,
            ),
            tags=("order2", "star"),
            tier="full",
            attributes=5,
        )
    )
    # -- stress tier: nightly-only heavy workloads --------------------------
    register(
        Scenario(
            name="stress-wide-16",
            description="16 binary attributes (65k-cell joint), 4 planted "
            "pairs: the widest world in the fleet",
            seed=3131,
            builder=_stress_wide_16,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.75, min_recall=0.15, max_kl=2.50
            ),
            full_gates=ConformanceGates(
                min_precision=0.75, min_recall=0.15, max_kl=0.80
            ),
            tags=("order2", "wide", "stress"),
            tier="stress",
            attributes=16,
        )
    )
    register(
        Scenario(
            name="stress-wide-order3",
            description="10 binary attributes with order-3 planted cells: "
            "deep scan over a wide world",
            seed=3232,
            builder=_stress_wide_order3,
            max_order=3,
            gates=ConformanceGates(
                min_precision=0.75,
                min_recall=0.10,
                max_kl=0.60,
                max_false_alarms=2,
            ),
            full_gates=ConformanceGates(
                min_precision=0.75,
                min_recall=0.40,
                max_kl=0.05,
                max_false_alarms=2,
            ),
            tags=("order3", "wide", "stress"),
            tier="stress",
            attributes=10,
        )
    )
    register(
        Scenario(
            name="stress-zipf-wide",
            description="6 attributes, Zipf 1.1 masses up to cardinality "
            "10: heavy tails at width",
            seed=3333,
            builder=_stress_zipf_wide,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.20, max_kl=0.30, max_false_alarms=6
            ),
            full_gates=ConformanceGates(
                min_precision=0.20, max_kl=0.05, max_false_alarms=8
            ),
            tags=("order2", "zipf", "stress"),
            tier="stress",
            attributes=6,
        )
    )
    register(
        Scenario(
            name="stress-order5",
            description="one order-5 planted cell over 7 binary attributes; "
            "the deepest scan in the fleet",
            seed=3434,
            builder=_stress_order5,
            max_order=5,
            gates=ConformanceGates(
                min_precision=0.75,
                min_recall=0.02,
                max_kl=0.10,
                max_false_alarms=2,
            ),
            full_gates=ConformanceGates(
                min_precision=0.75,
                min_recall=0.10,
                max_kl=0.02,
                max_false_alarms=2,
            ),
            tags=("order5", "deep", "stress"),
            tier="stress",
            attributes=7,
        )
    )
    register(
        Scenario(
            name="stress-near-singular",
            description="5 attributes with margins pinned to 0.2% mass: "
            "near-singular at width",
            seed=3535,
            builder=_stress_near_singular,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.75, min_recall=0.05, max_kl=0.10
            ),
            full_gates=ConformanceGates(
                min_precision=0.75, min_recall=0.05, max_kl=0.02
            ),
            tags=("order2", "singular", "stress"),
            tier="stress",
            attributes=5,
        )
    )
    register(
        Scenario(
            name="stress-corrupted",
            description="5% label noise plus 40% duplicated rows stacked on "
            "a chained world",
            seed=3636,
            builder=_stress_corrupted,
            max_order=2,
            # Duplicated rows overstate evidence, so collateral same-pair
            # adoptions are expected; the gate bounds them while asking
            # for the full chain (recall 0.66+).
            gates=ConformanceGates(
                min_precision=0.15,
                min_recall=0.66,
                max_kl=0.05,
                max_false_alarms=14,
            ),
            tags=("order2", "corruption", "duplicates", "stress"),
            tier="stress",
            attributes=4,
        )
    )
    register(
        Scenario(
            name="stress-correlated-drift",
            description="three stream phases drifting along one shared "
            "latent direction",
            seed=3737,
            builder=_stress_correlated_drift,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.35, min_recall=0.40, max_kl=0.10
            ),
            full_gates=ConformanceGates(
                min_precision=0.25,
                min_recall=0.75,
                max_kl=0.02,
                max_false_alarms=12,
            ),
            tags=("order2", "streaming", "drift", "stress"),
            tier="stress",
            attributes=5,
        )
    )
    register(
        Scenario(
            name="stress-churn",
            description="eight small stream phases with independently "
            "drifting margins, merged via TableBuilder",
            seed=3838,
            builder=_stress_churn,
            max_order=2,
            gates=ConformanceGates(
                min_precision=0.4, min_recall=0.5, max_kl=0.20
            ),
            tags=("order2", "streaming", "churn", "stress"),
            tier="stress",
            attributes=4,
        )
    )


_register_builtins()
