"""Closed-loop query-traffic replay against a :class:`QuerySession`.

The conformance matrix validates *quality*; the latency SLOs validate
*scale* — and a knowledge base that discovers fast but serves slow still
misses the production bar.  This module derives a deterministic, mixed
query workload from any scenario's schema and replays it closed-loop
(each client fires its next query the moment the previous answer lands)
against in-process :class:`~repro.api.session.QuerySession` objects,
returning the latency percentiles the per-scenario SLOs gate on.

The driver is the in-process twin of the network serving benchmark
(``benchmarks/_serving_scenario.py``), which imports the latency-stat
helpers from here so both layers summarize latency the same way.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.data.schema import Schema
from repro.exceptions import DataError

__all__ = [
    "closed_loop_replay",
    "latency_stats",
    "percentile",
    "replay_session",
    "scenario_query_mix",
]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample.

    Returns 0.0 for an empty sample; ``q`` is a fraction (0.99 for p99).
    The same estimator serves the serving benchmark and the discovery
    profile, so latency budgets mean one thing everywhere.
    """
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[rank]


def latency_stats(latencies: Sequence[float]) -> dict:
    """p50/p99/max (in milliseconds) of a latency sample in seconds."""
    ordered = sorted(latencies)
    return {
        "p50_ms": 1e3 * percentile(ordered, 0.50),
        "p99_ms": 1e3 * percentile(ordered, 0.99),
        "max_ms": 1e3 * (ordered[-1] if ordered else 0.0),
    }


def scenario_query_mix(schema: Schema, seed: int, size: int = 8) -> list[str]:
    """A deterministic serving-shaped query mix over ``schema``.

    The mix cycles three shapes — marginals (``A=a1``), single-evidence
    conditionals (``A=a1 | B=b1``), and double-evidence conditionals
    (``A=a1 | B=b1, C=c1`` when the schema is wide enough) — with the
    attributes and values drawn from a generator seeded by ``seed``, so
    the same scenario always replays the same traffic.  Targets never
    overlap their evidence (the parser rejects that), and every query is
    returned in the textual form :meth:`QuerySession.ask` accepts.
    """
    if size < 1:
        raise DataError(f"query-mix size must be >= 1, got {size}")
    if len(schema) < 2:
        raise DataError("a query mix needs at least two attributes")
    rng = np.random.default_rng(seed)
    names = schema.names

    def assignment(name: str) -> str:
        attribute = schema.attribute(name)
        value = attribute.value_at(int(rng.integers(attribute.cardinality)))
        return f"{name}={value}"

    queries: list[str] = []
    shapes = ["marginal", "conditional", "double"]
    while len(queries) < size:
        shape = shapes[len(queries) % len(shapes)]
        if shape == "double" and len(schema) < 3:
            shape = "conditional"
        if shape == "marginal":
            chosen = rng.choice(len(names), size=1, replace=False)
        elif shape == "conditional":
            chosen = rng.choice(len(names), size=2, replace=False)
        else:
            chosen = rng.choice(len(names), size=3, replace=False)
        parts = [assignment(names[index]) for index in chosen]
        if len(parts) == 1:
            queries.append(parts[0])
        else:
            queries.append(f"{parts[0]} | {', '.join(parts[1:])}")
    return queries


def closed_loop_replay(
    make_client: Callable[[], Callable[[str], float]],
    queries: Sequence[str],
    requests: int,
    clients: int = 1,
) -> dict:
    """Closed-loop traffic replay: throughput and latency percentiles.

    ``make_client`` builds one callable per client slot (called in the
    client's own thread, so per-thread state like a dedicated session or
    connection is safe); each of ``clients`` slots then issues
    ``requests`` queries back-to-back, cycling ``queries`` offset by its
    slot the way the serving benchmark spreads its mix.  Returns total
    requests, wall-clock, sustained RPS, and p50/p99/max latency in ms.
    """
    if requests < 1:
        raise DataError(f"requests must be >= 1, got {requests}")
    if clients < 1:
        raise DataError(f"clients must be >= 1, got {clients}")
    if not queries:
        raise DataError("the replay mix holds no queries")
    latencies: list[list[float]] = [[] for _ in range(clients)]

    def worker(slot: int) -> None:
        ask = make_client()
        for index in range(requests):
            text = queries[(slot + index) % len(queries)]
            start = time.perf_counter()
            ask(text)
            latencies[slot].append(time.perf_counter() - start)

    started = time.perf_counter()
    if clients == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(slot,), daemon=True)
            for slot in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started
    flat = [value for chunk in latencies for value in chunk]
    total = clients * requests
    return {
        "clients": clients,
        "requests": total,
        "elapsed_s": elapsed,
        "rps": total / elapsed if elapsed > 0 else 0.0,
        **latency_stats(flat),
    }


def replay_session(
    model,
    queries: Sequence[str],
    requests: int,
    clients: int = 1,
    backend: str = "auto",
) -> dict:
    """Replay ``queries`` closed-loop against fresh query sessions.

    Each client slot gets its own :class:`~repro.api.session.QuerySession`
    over ``model`` (sessions are not shared across threads), created
    inside the replay so plan compilation and first-touch marginal costs
    are part of the measured traffic — the cold/warm mix a freshly
    deployed replica actually serves.  Sessions are closed afterwards.
    """
    from repro.api.session import QuerySession

    sessions: list[QuerySession] = []
    lock = threading.Lock()

    def make_client() -> Callable[[str], float]:
        session = QuerySession(model, backend=backend)
        with lock:
            sessions.append(session)
        return session.ask

    try:
        return closed_loop_replay(make_client, queries, requests, clients)
    finally:
        for session in sessions:
            session.close()
