"""Conformance runner: discovery + baselines scored over the scenario matrix.

For each registered :class:`~repro.scenarios.registry.Scenario` the runner
materializes the workload, runs the Figure-3 discovery engine (kernel
backend, with :class:`~repro.significance.kernels.DiscoveryProfile`
instrumentation), scores the adopted constraints against the planted
ground truth (precision / recall / false alarms), measures
KL(empirical ‖ fitted) as the goodness-of-fit summary, and optionally
runs the chi-square and BIC baseline selectors on the same table so the
paper's MML criterion is always compared against something.

The per-scenario :class:`~repro.scenarios.registry.ConformanceGates` are
then checked; CI's scenario-matrix job runs this in smoke mode and fails
the build on any gate miss, and ``benchmarks/run_all.py --json`` appends
the same per-scenario metrics to the benchmark trajectory.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.bic_selector import BICSelectorConfig, discover_bic
from repro.baselines.chi2_selector import Chi2SelectorConfig, discover_chi2
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.trace import ConstraintRecovery, score_constraint_keys
from repro.maxent.entropy import kl_divergence
from repro.scenarios.registry import (
    ConformanceGates,
    Scenario,
    all_scenarios,
    get_scenario,
)

__all__ = [
    "BaselineScore",
    "ScenarioOutcome",
    "outcome_to_dict",
    "record_outcomes",
    "run_matrix",
    "run_scenario",
]


@dataclass(frozen=True)
class BaselineScore:
    """Recovery of one baseline selector on one scenario."""

    selector: str
    precision: float
    recall: float
    found: int
    seconds: float


@dataclass
class ScenarioOutcome:
    """Everything measured for one scenario run."""

    scenario: str
    smoke: bool
    n_samples: int
    num_attributes: int
    max_order: int
    truth_size: int
    recovery: ConstraintRecovery
    kl_empirical_fitted: float
    seconds: float
    scan_seconds: float
    fit_seconds: float
    verify_seconds: float
    fit_sweeps: int
    constraints_found: int
    workers: int = 1
    baselines: list[BaselineScore] = field(default_factory=list)
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    @property
    def precision(self) -> float:
        return self.recovery.precision

    @property
    def recall(self) -> float:
        return self.recovery.recall


def check_gates(
    gates: ConformanceGates,
    recovery: ConstraintRecovery,
    kl: float,
) -> list[str]:
    """Human-readable description of every gate the outcome missed."""
    failures = []
    if recovery.precision < gates.min_precision:
        failures.append(
            f"precision {recovery.precision:.3f} < {gates.min_precision:.3f}"
        )
    if recovery.recall < gates.min_recall:
        failures.append(
            f"recall {recovery.recall:.3f} < {gates.min_recall:.3f}"
        )
    if kl > gates.max_kl:
        failures.append(f"KL {kl:.4f} > {gates.max_kl:.4f}")
    if (
        gates.max_false_alarms is not None
        and len(recovery.false_alarms) > gates.max_false_alarms
    ):
        failures.append(
            f"false alarms {len(recovery.false_alarms)} > "
            f"{gates.max_false_alarms}"
        )
    return failures


def run_scenario(
    scenario: Scenario | str,
    smoke: bool = True,
    include_baselines: bool = True,
    workers: int = 1,
) -> ScenarioOutcome:
    """Run discovery (+ baselines) on one scenario and score conformance.

    ``workers > 1`` runs the discovery scans sharded across a worker pool;
    adoption decisions (and therefore every conformance metric except the
    timings) are bit-identical to the serial run, which is exactly what
    CI's parallel-equivalence smoke step relies on.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    instance = scenario.build(smoke)
    table = instance.table
    config = DiscoveryConfig(max_order=scenario.max_order, max_workers=workers)

    start = time.perf_counter()
    with DiscoveryEngine(config) as engine:
        result = engine.run(table)
    seconds = time.perf_counter() - start

    recovery = result.score_against(set(instance.truth))
    kl = kl_divergence(
        table.probabilities().ravel(), result.model.joint().ravel()
    )
    profile = result.profile

    baselines: list[BaselineScore] = []
    if include_baselines:
        truth = set(instance.truth)
        baseline_start = time.perf_counter()
        chi2 = discover_chi2(
            table, Chi2SelectorConfig(max_order=scenario.max_order)
        )
        baselines.append(
            _baseline_score(
                "chi2",
                truth,
                {c.key for c in chi2.found},
                time.perf_counter() - baseline_start,
            )
        )
        baseline_start = time.perf_counter()
        bic = discover_bic(
            table, BICSelectorConfig(max_order=scenario.max_order)
        )
        baselines.append(
            _baseline_score(
                "bic",
                truth,
                {c.key for c in bic.found},
                time.perf_counter() - baseline_start,
            )
        )

    outcome = ScenarioOutcome(
        scenario=scenario.name,
        smoke=smoke,
        n_samples=table.total,
        num_attributes=len(table.schema),
        max_order=scenario.max_order,
        truth_size=len(instance.truth),
        recovery=recovery,
        kl_empirical_fitted=kl,
        seconds=seconds,
        scan_seconds=profile.scan_seconds if profile else 0.0,
        fit_seconds=profile.fit_seconds if profile else 0.0,
        verify_seconds=profile.verify_seconds if profile else 0.0,
        fit_sweeps=profile.fit_sweeps if profile else 0,
        constraints_found=len(result.found),
        workers=workers,
        baselines=baselines,
    )
    outcome.gate_failures = check_gates(
        scenario.gates_for(smoke), recovery, kl
    )
    return outcome


def _baseline_score(selector, truth, found_keys, seconds) -> BaselineScore:
    score = score_constraint_keys(truth, found_keys)
    return BaselineScore(
        selector=selector,
        precision=score.precision,
        recall=score.recall,
        found=len(found_keys),
        seconds=seconds,
    )


def run_matrix(
    names: Sequence[str] | None = None,
    smoke: bool = True,
    include_baselines: bool = True,
    workers: int = 1,
) -> list[ScenarioOutcome]:
    """Run the conformance runner over (a selection of) the registry."""
    if names is None:
        scenarios = list(all_scenarios())
    else:
        scenarios = [get_scenario(name) for name in names]
    return [
        run_scenario(scenario, smoke, include_baselines, workers=workers)
        for scenario in scenarios
    ]


def record_outcomes(registry, outcomes: Sequence[ScenarioOutcome]) -> list:
    """Write conformance outcomes through a run registry.

    Each outcome becomes one ``scenario`` run whose metrics document is
    :func:`outcome_to_dict` and whose config hash covers the scenario's
    *statistical* discovery configuration (the registry's
    :func:`~repro.store.runs.config_hash` excludes machine-local knobs,
    so the same scenario run on different machines stays comparable).
    Returns the :class:`~repro.store.records.RunRecord` rows.
    """
    import os

    # Imported lazily: the scenario registry must stay importable
    # without the persistence layer on the path of every caller.
    from repro.store.runs import config_hash, current_git_sha

    git_sha = current_git_sha()
    cpus = os.cpu_count() or 1
    records = []
    for outcome in outcomes:
        scenario = get_scenario(outcome.scenario)
        records.append(
            registry.record(
                kind="scenario",
                metrics=outcome_to_dict(outcome),
                smoke=outcome.smoke,
                cpus=cpus,
                config_hash=config_hash(
                    DiscoveryConfig(max_order=scenario.max_order)
                ),
                git_sha=git_sha,
            )
        )
    return records


def outcome_to_dict(outcome: ScenarioOutcome) -> dict:
    """JSON-ready dict of one outcome (keys → lists for serialization)."""
    return {
        "scenario": outcome.scenario,
        "smoke": outcome.smoke,
        "n_samples": outcome.n_samples,
        "num_attributes": outcome.num_attributes,
        "max_order": outcome.max_order,
        "truth_size": outcome.truth_size,
        "constraints_found": outcome.constraints_found,
        "precision": outcome.precision,
        "recall": outcome.recall,
        "false_alarms": len(outcome.recovery.false_alarms),
        "missed": len(outcome.recovery.missed),
        "kl_empirical_fitted": outcome.kl_empirical_fitted,
        "seconds": outcome.seconds,
        "stage_scan_s": outcome.scan_seconds,
        "stage_fit_s": outcome.fit_seconds,
        "stage_verify_s": outcome.verify_seconds,
        "fit_sweeps": outcome.fit_sweeps,
        "workers": outcome.workers,
        "baselines": [
            {
                "selector": b.selector,
                "precision": b.precision,
                "recall": b.recall,
                "found": b.found,
                "seconds": b.seconds,
            }
            for b in outcome.baselines
        ],
        "gate_failures": list(outcome.gate_failures),
        "passed": outcome.passed,
    }
