"""Conformance runner: discovery + baselines scored over the scenario matrix.

For each registered :class:`~repro.scenarios.registry.Scenario` the runner
materializes the workload, runs the Figure-3 discovery engine (kernel
backend, with :class:`~repro.significance.kernels.DiscoveryProfile`
instrumentation), scores the adopted constraints against the planted
ground truth (precision / recall / false alarms), measures
KL(empirical ‖ fitted) as the goodness-of-fit summary, and optionally
runs the chi-square and BIC baseline selectors on the same table so the
paper's MML criterion is always compared against something.

The per-scenario :class:`~repro.scenarios.registry.ConformanceGates` are
then checked; CI's scenario-matrix job runs this in smoke mode and fails
the build on any gate miss, and ``benchmarks/run_all.py --json`` appends
the same per-scenario metrics to the benchmark trajectory.

Beyond quality, the runner enforces each scenario's
:class:`~repro.scenarios.registry.LatencySLO`: per-call p50/p99 budgets
for the scan/fit/verify stages (from the discovery profile's per-call
samples) and p50/p99 budgets for a deterministic closed-loop query
replay (:mod:`repro.scenarios.replay`) driven against the fitted model.
SLO misses are reported separately from quality-gate misses but fail the
scenario the same way.  Set ``REPRO_SLO_SCALE`` (a float multiplier) to
relax or tighten every budget uniformly, e.g. on slow CI hardware.
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.bic_selector import BICSelectorConfig, discover_bic
from repro.baselines.chi2_selector import Chi2SelectorConfig, discover_chi2
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.trace import ConstraintRecovery, score_constraint_keys
from repro.maxent.entropy import kl_divergence
from repro.scenarios.registry import (
    DEFAULT_TIERS,
    ConformanceGates,
    LatencySLO,
    Scenario,
    all_scenarios,
    get_scenario,
)
from repro.scenarios.replay import replay_session, scenario_query_mix

__all__ = [
    "BaselineScore",
    "ScenarioOutcome",
    "check_gates",
    "check_slo",
    "outcome_to_dict",
    "record_outcomes",
    "run_matrix",
    "run_scenario",
]

#: Requests issued by the per-scenario query replay (single client).
REPLAY_REQUESTS = 60


@dataclass(frozen=True)
class BaselineScore:
    """Recovery of one baseline selector on one scenario."""

    selector: str
    precision: float
    recall: float
    found: int
    seconds: float


@dataclass
class ScenarioOutcome:
    """Everything measured for one scenario run."""

    scenario: str
    smoke: bool
    n_samples: int
    num_attributes: int
    max_order: int
    truth_size: int
    recovery: ConstraintRecovery
    kl_empirical_fitted: float
    seconds: float
    scan_seconds: float
    fit_seconds: float
    verify_seconds: float
    fit_sweeps: int
    constraints_found: int
    workers: int = 1
    tier: str = "smoke"
    stage_latency_ms: dict = field(default_factory=dict)
    query_replay: dict = field(default_factory=dict)
    baselines: list[BaselineScore] = field(default_factory=list)
    gate_failures: list[str] = field(default_factory=list)
    slo_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every quality gate and latency SLO held."""
        return not self.gate_failures and not self.slo_failures

    @property
    def precision(self) -> float:
        """Fraction of adopted constraints that lie on planted truth."""
        return self.recovery.precision

    @property
    def recall(self) -> float:
        """Fraction of the planted truth the engine recovered."""
        return self.recovery.recall


def check_gates(
    gates: ConformanceGates,
    recovery: ConstraintRecovery,
    kl: float,
) -> list[str]:
    """Human-readable description of every gate the outcome missed."""
    failures = []
    if recovery.precision < gates.min_precision:
        failures.append(
            f"precision {recovery.precision:.3f} < {gates.min_precision:.3f}"
        )
    if recovery.recall < gates.min_recall:
        failures.append(
            f"recall {recovery.recall:.3f} < {gates.min_recall:.3f}"
        )
    if kl > gates.max_kl:
        failures.append(f"KL {kl:.4f} > {gates.max_kl:.4f}")
    if (
        gates.max_false_alarms is not None
        and len(recovery.false_alarms) > gates.max_false_alarms
    ):
        failures.append(
            f"false alarms {len(recovery.false_alarms)} > "
            f"{gates.max_false_alarms}"
        )
    return failures


def check_slo(
    slo: LatencySLO,
    stage_latency_ms: dict,
    query_replay: dict,
) -> list[str]:
    """Human-readable description of every latency budget that was missed.

    ``stage_latency_ms`` holds ``{stage}_{p50|p99}_ms`` keys for the
    scan/fit/verify stages; ``query_replay`` holds the replay driver's
    ``p50_ms`` / ``p99_ms`` (missing or empty dicts skip those budgets,
    so a discovery run with no verify calls cannot fail the verify SLO).
    """
    failures = []
    for stage, q, budget in slo.budgets():
        label = "p50" if q == 0.50 else "p99"
        if stage == "query":
            observed = query_replay.get(f"{label}_ms")
        else:
            observed = stage_latency_ms.get(f"{stage}_{label}_ms")
        if observed is None:
            continue
        if observed > budget:
            failures.append(
                f"{stage} {label} {observed:.1f}ms > {budget:.1f}ms"
            )
    return failures


def _slo_scale() -> float:
    """The global SLO multiplier from ``REPRO_SLO_SCALE`` (default 1.0)."""
    raw = os.environ.get("REPRO_SLO_SCALE", "").strip()
    if not raw:
        return 1.0
    try:
        scale = float(raw)
    except ValueError:
        return 1.0
    return scale if scale > 0 else 1.0


def run_scenario(
    scenario: Scenario | str,
    smoke: bool = True,
    include_baselines: bool = True,
    workers: int = 1,
    include_replay: bool = True,
) -> ScenarioOutcome:
    """Run discovery (+ baselines + query replay) on one scenario.

    ``workers > 1`` runs the discovery scans sharded across a worker pool;
    adoption decisions (and therefore every conformance metric except the
    timings) are bit-identical to the serial run, which is exactly what
    CI's parallel-equivalence smoke step relies on.

    ``include_replay`` drives the scenario's deterministic query mix
    closed-loop against the fitted model and gates the latencies on the
    scenario's SLO; pass False to skip the replay (its query budgets are
    then not enforced, but the stage budgets still are).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    instance = scenario.build(smoke)
    table = instance.table
    config = DiscoveryConfig(max_order=scenario.max_order, max_workers=workers)

    start = time.perf_counter()
    with DiscoveryEngine(config) as engine:
        result = engine.run(table)
    seconds = time.perf_counter() - start

    recovery = result.score_against(set(instance.truth))
    kl = kl_divergence(
        table.probabilities().ravel(), result.model.joint().ravel()
    )
    profile = result.profile

    stage_latency_ms = {}
    if profile is not None:
        for stage in ("scan", "fit", "verify"):
            stage_latency_ms[f"{stage}_p50_ms"] = profile.stage_percentile_ms(
                stage, 0.50
            )
            stage_latency_ms[f"{stage}_p99_ms"] = profile.stage_percentile_ms(
                stage, 0.99
            )

    query_replay: dict = {}
    if include_replay:
        queries = scenario_query_mix(table.schema, scenario.seed)
        query_replay = replay_session(
            result.model, queries, requests=REPLAY_REQUESTS
        )

    baselines: list[BaselineScore] = []
    if include_baselines:
        truth = set(instance.truth)
        baseline_start = time.perf_counter()
        chi2 = discover_chi2(
            table, Chi2SelectorConfig(max_order=scenario.max_order)
        )
        baselines.append(
            _baseline_score(
                "chi2",
                truth,
                {c.key for c in chi2.found},
                time.perf_counter() - baseline_start,
            )
        )
        baseline_start = time.perf_counter()
        bic = discover_bic(
            table, BICSelectorConfig(max_order=scenario.max_order)
        )
        baselines.append(
            _baseline_score(
                "bic",
                truth,
                {c.key for c in bic.found},
                time.perf_counter() - baseline_start,
            )
        )

    outcome = ScenarioOutcome(
        scenario=scenario.name,
        smoke=smoke,
        n_samples=table.total,
        num_attributes=len(table.schema),
        max_order=scenario.max_order,
        truth_size=len(instance.truth),
        recovery=recovery,
        kl_empirical_fitted=kl,
        seconds=seconds,
        scan_seconds=profile.scan_seconds if profile else 0.0,
        fit_seconds=profile.fit_seconds if profile else 0.0,
        verify_seconds=profile.verify_seconds if profile else 0.0,
        fit_sweeps=profile.fit_sweeps if profile else 0,
        constraints_found=len(result.found),
        workers=workers,
        tier=scenario.tier,
        stage_latency_ms=stage_latency_ms,
        query_replay=query_replay,
        baselines=baselines,
    )
    outcome.gate_failures = check_gates(
        scenario.gates_for(smoke), recovery, kl
    )
    slo = scenario.slo_for(smoke)
    scale = _slo_scale()
    if scale != 1.0:
        slo = slo.scaled(scale)
    outcome.slo_failures = check_slo(slo, stage_latency_ms, query_replay)
    return outcome


def _baseline_score(selector, truth, found_keys, seconds) -> BaselineScore:
    score = score_constraint_keys(truth, found_keys)
    return BaselineScore(
        selector=selector,
        precision=score.precision,
        recall=score.recall,
        found=len(found_keys),
        seconds=seconds,
    )


def run_matrix(
    names: Sequence[str] | None = None,
    smoke: bool = True,
    include_baselines: bool = True,
    workers: int = 1,
    tiers: str | Sequence[str] | None = None,
    include_replay: bool = True,
) -> list[ScenarioOutcome]:
    """Run the conformance runner over (a selection of) the registry.

    When ``names`` is None the selection is tier-driven: ``tiers``
    defaults to :data:`~repro.scenarios.registry.DEFAULT_TIERS` (the
    stress tier is opt-in via ``tiers="stress"`` or ``tiers="all"``).
    Explicit ``names`` ignore the tier filter.
    """
    if names is None:
        selected = tiers if tiers is not None else DEFAULT_TIERS
        scenarios = list(all_scenarios(selected))
    else:
        scenarios = [get_scenario(name) for name in names]
    return [
        run_scenario(
            scenario,
            smoke,
            include_baselines,
            workers=workers,
            include_replay=include_replay,
        )
        for scenario in scenarios
    ]


def record_outcomes(registry, outcomes: Sequence[ScenarioOutcome]) -> list:
    """Write conformance outcomes through a run registry.

    Each outcome becomes one ``scenario`` run whose metrics document is
    :func:`outcome_to_dict` and whose config hash covers the scenario's
    *statistical* discovery configuration (the registry's
    :func:`~repro.store.runs.config_hash` excludes machine-local knobs,
    so the same scenario run on different machines stays comparable).
    Returns the :class:`~repro.store.records.RunRecord` rows.
    """
    import os

    # Imported lazily: the scenario registry must stay importable
    # without the persistence layer on the path of every caller.
    from repro.store.runs import config_hash, current_git_sha

    git_sha = current_git_sha()
    cpus = os.cpu_count() or 1
    records = []
    for outcome in outcomes:
        scenario = get_scenario(outcome.scenario)
        records.append(
            registry.record(
                kind="scenario",
                metrics=outcome_to_dict(outcome),
                smoke=outcome.smoke,
                cpus=cpus,
                config_hash=config_hash(
                    DiscoveryConfig(max_order=scenario.max_order)
                ),
                git_sha=git_sha,
            )
        )
    return records


def outcome_to_dict(outcome: ScenarioOutcome) -> dict:
    """JSON-ready dict of one outcome (keys → lists for serialization)."""
    return {
        "scenario": outcome.scenario,
        "smoke": outcome.smoke,
        "n_samples": outcome.n_samples,
        "num_attributes": outcome.num_attributes,
        "max_order": outcome.max_order,
        "truth_size": outcome.truth_size,
        "constraints_found": outcome.constraints_found,
        "precision": outcome.precision,
        "recall": outcome.recall,
        "false_alarms": len(outcome.recovery.false_alarms),
        "missed": len(outcome.recovery.missed),
        "kl_empirical_fitted": outcome.kl_empirical_fitted,
        "seconds": outcome.seconds,
        "stage_scan_s": outcome.scan_seconds,
        "stage_fit_s": outcome.fit_seconds,
        "stage_verify_s": outcome.verify_seconds,
        "fit_sweeps": outcome.fit_sweeps,
        "workers": outcome.workers,
        "tier": outcome.tier,
        "stage_latency_ms": dict(outcome.stage_latency_ms),
        "query_replay": dict(outcome.query_replay),
        "baselines": [
            {
                "selector": b.selector,
                "precision": b.precision,
                "recall": b.recall,
                "found": b.found,
                "seconds": b.seconds,
            }
            for b in outcome.baselines
        ],
        "gate_failures": list(outcome.gate_failures),
        "slo_failures": list(outcome.slo_failures),
        "passed": outcome.passed,
    }
