"""Scenario conformance matrix: diverse discovery workloads with gates."""

from repro.scenarios.registry import (
    ConformanceGates,
    Scenario,
    ScenarioInstance,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.runner import (
    BaselineScore,
    ScenarioOutcome,
    outcome_to_dict,
    record_outcomes,
    run_matrix,
    run_scenario,
)

__all__ = [
    "BaselineScore",
    "ConformanceGates",
    "Scenario",
    "ScenarioInstance",
    "ScenarioOutcome",
    "all_scenarios",
    "get_scenario",
    "outcome_to_dict",
    "record_outcomes",
    "register",
    "run_matrix",
    "run_scenario",
    "scenario_names",
    "unregister",
]
