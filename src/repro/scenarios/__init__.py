"""Scenario conformance matrix: diverse discovery workloads with gates.

The package bundles the scenario registry (named, seeded workloads with
planted ground truth, quality gates, and latency SLOs — see
:mod:`repro.scenarios.registry`), the conformance runner that scores
discovery against them (:mod:`repro.scenarios.runner`), and the
closed-loop query-traffic replay the latency SLOs gate on
(:mod:`repro.scenarios.replay`).
"""

from repro.scenarios.registry import (
    DEFAULT_TIERS,
    TIERS,
    ConformanceGates,
    LatencySLO,
    Scenario,
    ScenarioInstance,
    all_scenarios,
    default_slo,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.runner import (
    BaselineScore,
    ScenarioOutcome,
    outcome_to_dict,
    record_outcomes,
    run_matrix,
    run_scenario,
)

__all__ = [
    "DEFAULT_TIERS",
    "TIERS",
    "BaselineScore",
    "ConformanceGates",
    "LatencySLO",
    "Scenario",
    "ScenarioInstance",
    "ScenarioOutcome",
    "all_scenarios",
    "default_slo",
    "get_scenario",
    "outcome_to_dict",
    "record_outcomes",
    "register",
    "run_matrix",
    "run_scenario",
    "scenario_names",
    "unregister",
]
