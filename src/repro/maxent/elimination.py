"""Appendix B generalized: factored partition sums by variable elimination.

The paper's Appendix B evaluates the "sum of products" equations with a
matrix recursion ``S_n = sum(Q_{n+1} x S_{n+1})`` that contracts one
attribute at a time instead of materializing the joint tensor.  That
recursion is variable elimination over the model's factor graph with a
fixed elimination order.

This module implements the general form: the model's factors (margin
vectors and cell-indicator tensors) are contracted attribute by attribute
using a min-fill elimination order computed on the interaction graph
(networkx).  For tree-like factor structures — which cell constraints over
small subsets usually induce — this answers partition sums and marginal
queries in time exponential only in the induced width, not in the number of
attributes, so wide schemas stay tractable without the dense joint.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.exceptions import QueryError
from repro.maxent.model import MaxEntModel


@dataclass
class Factor:
    """A non-negative tensor over a tuple of named attribute axes."""

    names: tuple[str, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        if self.table.ndim != len(self.names):
            raise QueryError(
                f"factor over {self.names} has tensor of rank "
                f"{self.table.ndim}"
            )


def model_factors(model: MaxEntModel) -> list[Factor]:
    """Decompose a model into its factor list (margins + cell indicators).

    The global ``a0`` is deliberately *excluded*: elimination computes
    unnormalized sums and queries normalize by ratio, so ``a0`` cancels.
    """
    factors = [
        Factor((attribute.name,), model.margin_factors[attribute.name].copy())
        for attribute in model.schema
    ]
    for (names, values), a in model.cell_factors.items():
        shape = tuple(
            model.schema.attribute(name).cardinality for name in names
        )
        table = np.ones(shape)
        table[values] = a
        factors.append(Factor(names, table))
    for names, array in model.table_factors.items():
        factors.append(Factor(tuple(names), array.copy()))
    return factors


def restrict(factor: Factor, evidence: Mapping[str, int]) -> Factor:
    """Slice a factor at fixed values of some of its attributes."""
    keep_names = tuple(n for n in factor.names if n not in evidence)
    slicer = tuple(
        evidence[n] if n in evidence else slice(None) for n in factor.names
    )
    table = factor.table[slicer]
    return Factor(keep_names, np.asarray(table))


def multiply(a: Factor, b: Factor) -> Factor:
    """Pointwise product over the union of the two factors' attributes."""
    names = tuple(dict.fromkeys(a.names + b.names))
    table = _align(a, names) * _align(b, names)
    return Factor(names, table)


def sum_out(factor: Factor, name: str) -> Factor:
    """Marginalize one attribute out of a factor."""
    if name not in factor.names:
        return factor
    axis = factor.names.index(name)
    names = factor.names[:axis] + factor.names[axis + 1 :]
    return Factor(names, factor.table.sum(axis=axis))


def min_fill_order(
    factors: Sequence[Factor], eliminate: Sequence[str]
) -> list[str]:
    """Min-fill elimination order over the factors' interaction graph.

    Greedy: repeatedly eliminate the attribute whose elimination adds the
    fewest fill edges among its not-yet-connected neighbours.
    """
    graph = nx.Graph()
    graph.add_nodes_from(eliminate)
    for factor in factors:
        present = [n for n in factor.names if n in set(eliminate)]
        for i, first in enumerate(present):
            for second in present[i + 1 :]:
                graph.add_edge(first, second)
    remaining = set(eliminate)
    order: list[str] = []
    while remaining:
        best_name = None
        best_fill = None
        for name in sorted(remaining):
            neighbors = [n for n in graph.neighbors(name) if n in remaining]
            fill = sum(
                1
                for i, first in enumerate(neighbors)
                for second in neighbors[i + 1 :]
                if not graph.has_edge(first, second)
            )
            if best_fill is None or fill < best_fill:
                best_fill = fill
                best_name = name
        assert best_name is not None
        neighbors = [n for n in graph.neighbors(best_name) if n in remaining]
        for i, first in enumerate(neighbors):
            for second in neighbors[i + 1 :]:
                graph.add_edge(first, second)
        graph.remove_node(best_name)
        remaining.remove(best_name)
        order.append(best_name)
    return order


def eliminate_all(
    factors: Sequence[Factor],
    eliminate: Sequence[str],
    order: Sequence[str] | None = None,
) -> Factor:
    """Contract the named attributes out of the factor product.

    Returns a factor over the surviving attributes (possibly rank 0 — a
    scalar partition sum).
    """
    working = list(factors)
    if order is None:
        order = min_fill_order(working, eliminate)
    for name in order:
        involved = [f for f in working if name in f.names]
        rest = [f for f in working if name not in f.names]
        if not involved:
            continue
        product = involved[0]
        for factor in involved[1:]:
            product = multiply(product, factor)
        working = rest + [sum_out(product, name)]
    result = Factor((), np.array(1.0))
    for factor in working:
        result = multiply(result, factor)
    return result


def partition_sum(
    model: MaxEntModel,
    evidence: Mapping[str, str | int] | None = None,
    factors: Sequence[Factor] | None = None,
) -> float:
    """Unnormalized mass consistent with ``evidence`` (Appendix B's 1/a0).

    With no evidence this is the full partition sum; the dense identity
    ``partition_sum(m) == m.unnormalized().sum()`` is a test invariant.
    ``factors`` lets callers serving many queries reuse one
    :func:`model_factors` decomposition instead of rebuilding it per call.
    """
    schema = model.schema
    fixed = schema.indices_of(evidence or {})
    if factors is None:
        factors = model_factors(model)
    restricted = [restrict(f, fixed) for f in factors]
    free = [n for n in schema.names if n not in fixed]
    result = eliminate_all(restricted, free)
    return float(result.table)


def query(
    model: MaxEntModel,
    target: Mapping[str, str | int],
    given: Mapping[str, str | int] | None = None,
) -> float:
    """``P(target | given)`` via elimination, never building the joint.

    Matches :meth:`MaxEntModel.conditional` (the dense path) exactly; the
    property tests assert agreement.
    """
    given = dict(given or {})
    schema = model.schema
    target_idx = schema.indices_of(target)
    given_idx = schema.indices_of(given)
    for name, value in target_idx.items():
        if name in given_idx and given_idx[name] != value:
            raise QueryError(
                f"target and evidence conflict on attribute {name!r}"
            )
    denominator = partition_sum(model, given_idx)
    if denominator <= 0:
        raise QueryError(f"evidence {given} has zero probability")
    numerator = partition_sum(model, {**given_idx, **target_idx})
    return numerator / denominator


def marginal(
    model: MaxEntModel,
    names: Sequence[str],
    factors: Sequence[Factor] | None = None,
) -> np.ndarray:
    """Normalized marginal over ``names`` via elimination (schema order).

    ``factors`` optionally reuses a prebuilt :func:`model_factors` list
    (the factors are only read, never mutated).
    """
    schema = model.schema
    ordered = schema.canonical_subset(names)
    if factors is None:
        factors = model_factors(model)
    free = [n for n in schema.names if n not in set(ordered)]
    result = eliminate_all(factors, free)
    # Reorder the surviving axes into schema order.
    permutation = [result.names.index(n) for n in ordered]
    table = np.transpose(result.table, permutation)
    total = table.sum()
    if total <= 0:
        raise QueryError("model has zero total mass")
    return table / total


def _align(factor: Factor, names: tuple[str, ...]) -> np.ndarray:
    """Broadcast a factor's tensor to the axis layout given by ``names``."""
    expand = [n for n in names if n not in factor.names]
    table = factor.table.reshape(factor.table.shape + (1,) * len(expand))
    current = factor.names + tuple(expand)
    permutation = [current.index(n) for n in names]
    return np.transpose(table, permutation)
