"""Probability constraints for the maximum-entropy model.

The paper distinguishes two kinds of constraints:

- **First-order margins** (Eq 48): the full probability vector of each
  attribute, ``p_i^A = N_i^A / N``.  These are always imposed.
- **Cell constraints**: single cells of higher-order marginals found
  significant, e.g. ``p^AC(A=1, C=2) = N^AC_12 / N = .219``.  Each adds one
  multiplicative ``a`` factor to the model (Eq 12); insignificant cells keep
  ``a = 1`` (Eq 116).

A :class:`ConstraintSet` bundles both and validates consistency.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.schema import Schema
from repro.exceptions import ConstraintError

#: Key identifying a cell constraint: (canonical subset names, value indices).
CellKey = tuple[tuple[str, ...], tuple[int, ...]]


def cellkey_to_dict(key: CellKey) -> dict:
    """JSON-ready form of a cell key; the one encoding every format uses."""
    names, values = key
    return {"attributes": list(names), "values": list(values)}


def cellkey_from_dict(data: dict) -> CellKey:
    """Inverse of :func:`cellkey_to_dict`."""
    return (
        tuple(data["attributes"]),
        tuple(int(value) for value in data["values"]),
    )


@dataclass(frozen=True)
class CellConstraint:
    """One marginal-cell probability constraint.

    Parameters
    ----------
    attributes:
        Attribute names of the marginal, in canonical (schema) order.
    values:
        Value indices, aligned with ``attributes``.
    probability:
        Target marginal probability in ``[0, 1]``.
    """

    attributes: tuple[str, ...]
    values: tuple[int, ...]
    probability: float

    def __post_init__(self) -> None:
        if len(self.attributes) != len(self.values):
            raise ConstraintError(
                f"attributes {self.attributes} and values {self.values} "
                f"have different lengths"
            )
        if len(self.attributes) < 2:
            raise ConstraintError(
                "cell constraints are for order >= 2; first-order margins "
                "are handled as whole vectors"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConstraintError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    @property
    def order(self) -> int:
        """Number of attributes in the constrained marginal."""
        return len(self.attributes)

    @property
    def key(self) -> CellKey:
        """Hashable identity of the constrained cell."""
        return (self.attributes, self.values)

    def matches(self, schema: Schema, index: tuple[int, ...]) -> bool:
        """True if joint cell ``index`` (full tensor index) lies in this cell."""
        for name, value in zip(self.attributes, self.values):
            if index[schema.axis(name)] != value:
                return False
        return True

    def describe(self, schema: Schema) -> str:
        """Human-readable form, e.g. ``P(SMOKING=smoker, FH=no) = 0.219``."""
        parts = ", ".join(
            f"{name}={schema.attribute(name).value_at(value)}"
            for name, value in zip(self.attributes, self.values)
        )
        return f"P({parts}) = {self.probability:.4f}"


class ConstraintSet:
    """First-order margins plus cell and/or subset-marginal constraints.

    Margins are stored per attribute as probability vectors summing to 1.
    Cell constraints are kept in insertion order (the discovery engine adds
    them most-significant first, and the Gevarter solver visits them in that
    order).

    Subset-marginal constraints fix a *whole* marginal table over an
    attribute subset (Cheeseman's 1983 parameterization, the classical
    log-linear model family) rather than the paper's single cells; they are
    used by the :mod:`repro.baselines.loglinear` comparator.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._margins: dict[str, np.ndarray] = {}
        self._cells: dict[CellKey, CellConstraint] = {}
        self._subset_margins: dict[tuple[str, ...], np.ndarray] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def first_order(cls, table: ContingencyTable) -> "ConstraintSet":
        """Margins taken from a table's first-order probabilities (Eq 48)."""
        constraints = cls(table.schema)
        for attribute in table.schema:
            constraints.set_margin(
                attribute.name, table.first_order_probabilities(attribute.name)
            )
        return constraints

    def set_margin(self, name: str, probabilities: Sequence[float]) -> None:
        """Impose the full first-order probability vector of an attribute."""
        attribute = self.schema.attribute(name)
        vector = np.asarray(probabilities, dtype=float)
        if vector.shape != (attribute.cardinality,):
            raise ConstraintError(
                f"margin for {name!r} must have length "
                f"{attribute.cardinality}, got shape {vector.shape}"
            )
        if (vector < 0).any():
            raise ConstraintError(f"margin for {name!r} has negative entries")
        total = vector.sum()
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ConstraintError(
                f"margin for {name!r} must sum to 1, sums to {total}"
            )
        self._margins[name] = vector

    def add_cell(self, constraint: CellConstraint) -> None:
        """Add a cell constraint, validating subset and value ranges."""
        canonical = self.schema.canonical_subset(constraint.attributes)
        if canonical != constraint.attributes:
            raise ConstraintError(
                f"cell constraint attributes {constraint.attributes} are not "
                f"in canonical schema order {canonical}"
            )
        for name, value in zip(constraint.attributes, constraint.values):
            attribute = self.schema.attribute(name)
            if not 0 <= value < attribute.cardinality:
                raise ConstraintError(
                    f"value index {value} out of range for {name!r}"
                )
        if constraint.key in self._cells:
            raise ConstraintError(
                f"duplicate cell constraint for {constraint.key}"
            )
        self._check_cell_consistency(constraint)
        self._cells[constraint.key] = constraint

    def cell_from_table(
        self,
        table: ContingencyTable,
        attributes: Sequence[str],
        values: Sequence[int],
    ) -> CellConstraint:
        """Build a cell constraint whose target is the table's observed value.

        This is the discovery loop's move: a significant observed ``N`` cell
        becomes the constraint ``p = N_cell / N``.
        """
        names = self.schema.canonical_subset(attributes)
        order = {n: i for i, n in enumerate(attributes)}
        ordered_values = tuple(values[order[n]] for n in names)
        marginal = table.marginal(names)
        probability = float(marginal[ordered_values]) / table.total
        return CellConstraint(names, ordered_values, probability)

    def set_subset_margin(
        self, names: Sequence[str], probabilities: np.ndarray
    ) -> None:
        """Impose the full marginal table over an attribute subset.

        The array must be laid out in schema order over the subset's axes
        and sum to 1.  Its own single-attribute sums must agree with any
        first-order margins already set (otherwise the constraint system is
        inconsistent and no distribution satisfies it).
        """
        ordered = self.schema.canonical_subset(names)
        if len(ordered) < 2:
            raise ConstraintError(
                "subset margins are for order >= 2; use set_margin for "
                "single attributes"
            )
        expected_shape = tuple(
            self.schema.attribute(n).cardinality for n in ordered
        )
        array = np.asarray(probabilities, dtype=float)
        if array.shape != expected_shape:
            raise ConstraintError(
                f"subset margin for {ordered} must have shape "
                f"{expected_shape}, got {array.shape}"
            )
        if (array < 0).any():
            raise ConstraintError(
                f"subset margin for {ordered} has negative entries"
            )
        if not np.isclose(array.sum(), 1.0, atol=1e-9):
            raise ConstraintError(
                f"subset margin for {ordered} must sum to 1, "
                f"sums to {array.sum()}"
            )
        for axis, name in enumerate(ordered):
            if name not in self._margins:
                continue
            other_axes = tuple(a for a in range(len(ordered)) if a != axis)
            implied = array.sum(axis=other_axes)
            if not np.allclose(implied, self._margins[name], atol=1e-6):
                raise ConstraintError(
                    f"subset margin for {ordered} implies a first-order "
                    f"margin for {name!r} inconsistent with the one set"
                )
        if ordered in self._subset_margins:
            raise ConstraintError(f"duplicate subset margin for {ordered}")
        self._subset_margins[ordered] = array

    def subset_margin_from_table(
        self, table: ContingencyTable, names: Sequence[str]
    ) -> np.ndarray:
        """The observed marginal probabilities over a subset."""
        ordered = self.schema.canonical_subset(names)
        return table.marginal(ordered) / table.total

    # -- access -------------------------------------------------------------------

    @property
    def margin_names(self) -> tuple[str, ...]:
        return tuple(self._margins)

    @property
    def subset_margins(self) -> dict[tuple[str, ...], np.ndarray]:
        return dict(self._subset_margins)

    def has_subset_margin(self, names: Sequence[str]) -> bool:
        return self.schema.canonical_subset(names) in self._subset_margins

    def margin(self, name: str) -> np.ndarray:
        try:
            return self._margins[name]
        except KeyError:
            raise ConstraintError(f"no margin set for attribute {name!r}") from None

    def has_margin(self, name: str) -> bool:
        return name in self._margins

    @property
    def cells(self) -> tuple[CellConstraint, ...]:
        return tuple(self._cells.values())

    def cell_keys(self) -> set[CellKey]:
        return set(self._cells)

    def has_cell(self, key: CellKey) -> bool:
        return key in self._cells

    def cells_of_order(self, order: int) -> tuple[CellConstraint, ...]:
        return tuple(c for c in self._cells.values() if c.order == order)

    def __len__(self) -> int:
        return len(self._margins) + len(self._cells)

    def __iter__(self) -> Iterator[CellConstraint]:
        return iter(self._cells.values())

    def copy(self) -> "ConstraintSet":
        clone = ConstraintSet(self.schema)
        clone._margins = {k: v.copy() for k, v in self._margins.items()}
        clone._cells = dict(self._cells)
        clone._subset_margins = {
            k: v.copy() for k, v in self._subset_margins.items()
        }
        return clone

    # -- consistency --------------------------------------------------------------

    def validate_complete(self) -> None:
        """Require every attribute to have a first-order margin."""
        missing = [n for n in self.schema.names if n not in self._margins]
        if missing:
            raise ConstraintError(
                f"first-order margins missing for attributes: {missing}"
            )

    def _check_cell_consistency(self, new: CellConstraint) -> None:
        """Reject a cell whose target exceeds a containing known marginal.

        A cell probability can never exceed the probability of any marginal
        event containing it: ``p(A=i, C=k) <= p(A=i)`` and, if the cell
        ``(A=i, B=j)`` is already constrained and the new cell refines it,
        ``p(A=i, B=j, C=k) <= p(A=i, B=j)``.
        """
        tolerance = 1e-9
        assignment: Mapping[str, int] = dict(zip(new.attributes, new.values))
        for name, value in assignment.items():
            if name in self._margins:
                bound = float(self._margins[name][value])
                if new.probability > bound + tolerance:
                    raise ConstraintError(
                        f"cell target {new.probability:.6f} exceeds margin "
                        f"P({name}={value}) = {bound:.6f}"
                    )
        for existing in self._cells.values():
            if set(existing.attributes) < set(new.attributes):
                if all(
                    assignment[n] == v
                    for n, v in zip(existing.attributes, existing.values)
                ):
                    if new.probability > existing.probability + tolerance:
                        raise ConstraintError(
                            f"cell target {new.probability:.6f} exceeds "
                            f"containing constrained cell "
                            f"{existing.key} = {existing.probability:.6f}"
                        )
