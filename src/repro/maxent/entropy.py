"""Information-theoretic quantities used throughout the paper.

The entropy (Eq 7) drives the whole method: the fitted model is the
*maximum-entropy* distribution consistent with the constraints.  The tests
use these functions to assert the defining property — among distributions
matching the constraints, the fitted model's entropy is maximal (in
particular at least the empirical distribution's, which satisfies strictly
more constraints).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy ``H = -sum p ln p`` in nats (Eq 7).

    Zero-probability cells contribute zero (the ``p ln p -> 0`` limit).
    """
    p = np.asarray(probabilities, dtype=float).ravel()
    _validate_distribution(p)
    positive = p[p > 0]
    return float(-(positive * np.log(positive)).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``KL(p || q) = sum p ln(p/q)`` in nats.

    Infinite when ``p`` puts mass where ``q`` does not.
    """
    p = np.asarray(p, dtype=float).ravel()
    q = np.asarray(q, dtype=float).ravel()
    if p.shape != q.shape:
        raise DataError(
            f"distributions have different sizes: {p.shape} vs {q.shape}"
        )
    _validate_distribution(p)
    _validate_distribution(q)
    mask = p > 0
    if (q[mask] == 0).any():
        return float("inf")
    return float((p[mask] * np.log(p[mask] / q[mask])).sum())


def mutual_information(joint: np.ndarray) -> float:
    """Mutual information of a 2-D joint distribution, in nats."""
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise DataError(f"mutual information needs a 2-D joint, got rank {joint.ndim}")
    _validate_distribution(joint.ravel())
    row = joint.sum(axis=1)
    col = joint.sum(axis=0)
    independent = np.outer(row, col)
    return kl_divergence(joint.ravel(), independent.ravel())


def conditional_entropy(joint: np.ndarray) -> float:
    """``H(row | col)`` for a 2-D joint distribution, in nats."""
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise DataError(
            f"conditional entropy needs a 2-D joint, got rank {joint.ndim}"
        )
    col = joint.sum(axis=0)
    return entropy(joint) - entropy(col)


def _validate_distribution(p: np.ndarray) -> None:
    if (p < -1e-12).any():
        raise DataError("probabilities must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise DataError(f"probabilities must sum to 1, sum to {total}")
