"""Convex dual solver: L-BFGS on the maximum-entropy dual.

The maxent problem the paper solves by fixed-point iteration has a convex
dual: with one Lagrange multiplier λ per constraint (Eq 8's ``w``'s, up to
sign), the distribution is ``p(x) ∝ exp(Σ λ_c f_c(x))`` and the optimal
multipliers minimize

    D(λ) = log Z(λ) − Σ_c λ_c b_c ,

whose gradient is ``E_p[f_c] − b_c`` — exactly the constraint violations.
Minimizing D with a quasi-Newton method (scipy's L-BFGS-B) therefore
reaches the same fixed point as IPF / the paper's Gauss–Seidel, usually in
far fewer function evaluations on ill-conditioned systems.

The recovered multipliers map directly onto the paper's ``a`` values:
``a_c = exp(λ_c)`` and ``a0 = 1/Z`` — so the result is returned as a
regular :class:`~repro.maxent.model.MaxEntModel`.

Limitations: zero-probability targets push multipliers to −∞; such
degenerate constraints are rejected here (fit them with
:func:`repro.maxent.ipf.fit_ipf`, whose multiplicative updates reach the
boundary exactly).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.exceptions import ConstraintError, ConvergenceError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import FitResult
from repro.maxent.model import MaxEntModel


def fit_dual(
    constraints: ConstraintSet,
    tol: float = 1e-10,
    max_iterations: int = 500,
    require_convergence: bool = True,
) -> FitResult:
    """Fit the maxent model by minimizing the dual with L-BFGS-B.

    Parameters mirror :func:`repro.maxent.ipf.fit_ipf` where applicable;
    ``tol`` bounds the final maximum constraint violation (the gradient's
    infinity norm).
    """
    constraints.validate_complete()
    schema = constraints.schema
    _reject_degenerate_targets(constraints)
    features, targets = _feature_masks(constraints)

    flat_features = features.reshape(features.shape[0], -1)

    def dual_and_gradient(lam: np.ndarray):
        scores = lam @ flat_features
        shift = scores.max()
        weights = np.exp(scores - shift)
        z = weights.sum()
        p = weights / z
        expectations = flat_features @ p
        # log Z(λ) = shift + log(sum exp(scores - shift)).
        value = shift + np.log(z) - lam @ targets
        gradient = expectations - targets
        return value, gradient

    initial = np.zeros(features.shape[0])
    result = optimize.minimize(
        dual_and_gradient,
        initial,
        jac=True,
        method="L-BFGS-B",
        options={
            "maxiter": max_iterations,
            "ftol": 1e-16,
            "gtol": tol / 10.0,
        },
    )
    _value, gradient = dual_and_gradient(result.x)
    violation = float(np.abs(gradient).max())
    converged = violation < tol
    if not converged and require_convergence:
        raise ConvergenceError(
            f"dual solver did not reach tol {tol:.3g} "
            f"(violation {violation:.3g} after {result.nit} iterations)"
        )

    model = _model_from_multipliers(schema, constraints, result.x)
    return FitResult(
        model=model,
        converged=converged,
        sweeps=int(result.nit),
        max_violation=violation,
        history=[violation],
        trace=[],
    )


def _reject_degenerate_targets(constraints: ConstraintSet) -> None:
    """Boundary targets drive multipliers to ±∞; route them to fit_ipf."""
    message = (
        "the dual solver requires all constraint targets strictly inside "
        "(0, 1); fit degenerate targets with fit_ipf"
    )
    for name in constraints.schema.names:
        margin = constraints.margin(name)
        if (margin <= 0.0).any() or (margin >= 1.0).any():
            raise ConstraintError(message)
    for cell in constraints.cells:
        if not 0.0 < cell.probability < 1.0:
            raise ConstraintError(message)
    for table in constraints.subset_margins.values():
        if (table <= 0.0).any() or (table >= 1.0).any():
            raise ConstraintError(message)


def _feature_masks(
    constraints: ConstraintSet,
) -> tuple[np.ndarray, np.ndarray]:
    """Indicator tensor per constraint and the target vector.

    For each attribute, all but the last value get a feature (the last is
    implied by normalization — keeping it would make the dual singular
    without changing the optimum).  Cell constraints and subset-margin
    cells get one feature each (subset margins likewise drop one cell).
    """
    schema = constraints.schema
    masks: list[np.ndarray] = []
    targets: list[float] = []
    for attribute in schema:
        margin = constraints.margin(attribute.name)
        axis = schema.axis(attribute.name)
        for value in range(attribute.cardinality - 1):
            mask = np.zeros(schema.shape)
            slicer: list[slice | int] = [slice(None)] * len(schema)
            slicer[axis] = value
            mask[tuple(slicer)] = 1.0
            masks.append(mask)
            targets.append(float(margin[value]))
    for cell in constraints.cells:
        mask = np.zeros(schema.shape)
        slicer = [slice(None)] * len(schema)
        for name, value in zip(cell.attributes, cell.values):
            slicer[schema.axis(name)] = value
        mask[tuple(slicer)] = 1.0
        masks.append(mask)
        targets.append(cell.probability)
    for names, table in constraints.subset_margins.items():
        axes = schema.axes(names)
        cells = list(np.ndindex(table.shape))
        for index in cells[:-1]:
            mask = np.zeros(schema.shape)
            slicer = [slice(None)] * len(schema)
            for axis, value in zip(axes, index):
                slicer[axis] = value
            mask[tuple(slicer)] = 1.0
            masks.append(mask)
            targets.append(float(table[index]))
    return np.stack(masks), np.array(targets)


def _model_from_multipliers(
    schema, constraints: ConstraintSet, lam: np.ndarray
) -> MaxEntModel:
    """Map dual multipliers back onto the paper's ``a`` factors."""
    position = 0
    margin_factors: dict[str, np.ndarray] = {}
    for attribute in schema:
        factors = np.ones(attribute.cardinality)
        for value in range(attribute.cardinality - 1):
            factors[value] = np.exp(lam[position])
            position += 1
        margin_factors[attribute.name] = factors
    cell_factors = {}
    for cell in constraints.cells:
        cell_factors[cell.key] = float(np.exp(lam[position]))
        position += 1
    table_factors: dict[tuple[str, ...], np.ndarray] = {}
    for names, table in constraints.subset_margins.items():
        array = np.ones(table.shape)
        cells = list(np.ndindex(table.shape))
        for index in cells[:-1]:
            array[index] = np.exp(lam[position])
            position += 1
        table_factors[names] = array
    model = MaxEntModel(
        schema, margin_factors, cell_factors, 1.0, table_factors
    )
    model.normalize()
    return model
