"""The factored maximum-entropy joint model (Eq 12).

The paper derives, via Lagrange multipliers on the entropy (Eqs 7-13), that
the maxent joint subject to marginal constraints has product form::

    p_ijk... = a0 * a_i^A * a_j^B * a_k^C * ... * a_ij^AB * ...

where one ``a`` factor exists per constraint: a vector factor per
first-order margin and a *scalar* factor per constrained higher-order cell
(insignificant cells keep ``a = 1``, Eq 116).

:class:`MaxEntModel` stores exactly these factors.  While the joint state
space is small (every experiment in the paper) probabilities are computed by
materializing the dense tensor; :mod:`repro.maxent.elimination` provides the
factored Appendix-B evaluation for wide schemas.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.data.schema import Schema
from repro.exceptions import ConstraintError, QueryError
from repro.maxent.constraints import CellKey


class MaxEntModel:
    """A joint distribution in the paper's ``a0 * prod(a)`` product form.

    Parameters
    ----------
    schema:
        Attribute schema fixing the tensor layout.
    margin_factors:
        Per-attribute factor vectors ``a_i^A``; missing attributes default
        to all-ones.
    cell_factors:
        Scalar factor per constrained marginal cell, keyed by
        ``(subset names, value indices)``.
    table_factors:
        Full factor *tables* over attribute subsets (one entry per
        constrained whole marginal — the Cheeseman/log-linear
        parameterization used by the baselines).  Keyed by canonical
        subset names; arrays laid out over the subset's axes.
    a0:
        Global normalization factor (Eq 13's ``e^-w0``).
    """

    def __init__(
        self,
        schema: Schema,
        margin_factors: Mapping[str, np.ndarray] | None = None,
        cell_factors: Mapping[CellKey, float] | None = None,
        a0: float = 1.0,
        table_factors: Mapping[tuple[str, ...], np.ndarray] | None = None,
    ):
        self.schema = schema
        self.margin_factors: dict[str, np.ndarray] = {}
        for attribute in schema:
            if margin_factors and attribute.name in margin_factors:
                vector = np.asarray(margin_factors[attribute.name], dtype=float)
                if vector.shape != (attribute.cardinality,):
                    raise ConstraintError(
                        f"margin factor for {attribute.name!r} has shape "
                        f"{vector.shape}, expected ({attribute.cardinality},)"
                    )
                if (vector < 0).any():
                    raise ConstraintError(
                        f"margin factor for {attribute.name!r} has negative "
                        f"entries"
                    )
                self.margin_factors[attribute.name] = vector.copy()
            else:
                self.margin_factors[attribute.name] = np.ones(
                    attribute.cardinality
                )
        self.cell_factors: dict[CellKey, float] = {}
        if cell_factors:
            for key, value in cell_factors.items():
                if value < 0:
                    raise ConstraintError(
                        f"cell factor for {key} is negative: {value}"
                    )
                self.cell_factors[key] = float(value)
        self.table_factors: dict[tuple[str, ...], np.ndarray] = {}
        if table_factors:
            for names, array in table_factors.items():
                expected = tuple(
                    schema.attribute(n).cardinality for n in names
                )
                array = np.asarray(array, dtype=float)
                if array.shape != expected:
                    raise ConstraintError(
                        f"table factor for {names} has shape {array.shape}, "
                        f"expected {expected}"
                    )
                if (array < 0).any():
                    raise ConstraintError(
                        f"table factor for {names} has negative entries"
                    )
                self.table_factors[tuple(names)] = array.copy()
        self.a0 = float(a0)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def independent(
        cls, schema: Schema, margins: Mapping[str, Sequence[float]]
    ) -> "MaxEntModel":
        """The independence model: factors equal to first-order probabilities.

        This is the paper's Eq 60/61 observation: with only first-order
        constraints the maxent solution sets ``a_i = p_i`` (and ``a0 = 1``),
        so ``p_ijk = p_i p_j p_k``.
        """
        factors = {
            name: np.asarray(margins[name], dtype=float)
            for name in schema.names
        }
        return cls(schema, factors, {}, a0=1.0)

    @classmethod
    def uniform(cls, schema: Schema) -> "MaxEntModel":
        """The uninformed model: every joint cell equally likely."""
        return cls(schema, None, {}, a0=1.0 / schema.num_cells)

    # -- evaluation ---------------------------------------------------------------

    def unnormalized(self) -> np.ndarray:
        """Dense tensor of ``prod(a)`` *without* the ``a0`` factor."""
        tensor = np.ones(self.schema.shape)
        for axis, attribute in enumerate(self.schema):
            shape = [1] * len(self.schema)
            shape[axis] = attribute.cardinality
            tensor = tensor * self.margin_factors[attribute.name].reshape(shape)
        for (names, values), factor in self.cell_factors.items():
            slicer: list[slice | int] = [slice(None)] * len(self.schema)
            for name, value in zip(names, values):
                slicer[self.schema.axis(name)] = value
            tensor[tuple(slicer)] *= factor
        for names, array in self.table_factors.items():
            shape = [1] * len(self.schema)
            for name in names:
                axis = self.schema.axis(name)
                shape[axis] = self.schema.attributes[axis].cardinality
            # The subset's axes are in schema order, so a reshape aligns.
            tensor = tensor * array.reshape(shape)
        return tensor

    def joint(self) -> np.ndarray:
        """Dense normalized joint probability tensor ``p_ijk...``.

        The stored ``a0`` is used when it normalizes exactly (as after a
        converged fit); otherwise the tensor is renormalized defensively so
        the result is always a probability distribution.
        """
        tensor = self.unnormalized() * self.a0
        total = tensor.sum()
        if total <= 0:
            raise ConstraintError("model has zero total mass")
        if not np.isclose(total, 1.0, atol=1e-9):
            tensor = tensor / total
        return tensor

    def normalize(self) -> None:
        """Recompute ``a0`` so the joint sums to exactly 1."""
        total = self.unnormalized().sum()
        if total <= 0:
            raise ConstraintError("model has zero total mass")
        self.a0 = 1.0 / total

    def marginal(self, names: Sequence[str]) -> np.ndarray:
        """Marginal probability array over ``names`` (schema order)."""
        ordered = self.schema.canonical_subset(names)
        drop = self.schema.drop_axes(ordered)
        joint = self.joint()
        return joint.sum(axis=drop) if drop else joint

    def probability(self, assignment: Mapping[str, str | int]) -> float:
        """Probability of a (possibly partial) labelled assignment."""
        if not assignment:
            return 1.0
        indices = self.schema.indices_of(assignment)
        names = self.schema.canonical_subset(list(indices))
        sub = self.marginal(names)
        return float(sub[tuple(indices[n] for n in names)])

    def conditional(
        self,
        target: Mapping[str, str | int],
        given: Mapping[str, str | int],
    ) -> float:
        """``P(target | given)`` as a ratio of joints (paper's Eq in §1).

        Raises :class:`QueryError` if the evidence has zero probability or
        target and evidence assign conflicting values to an attribute.
        """
        overlap = set(target) & set(given)
        for name in overlap:
            attribute = self.schema.attribute(name)
            if attribute.index_of(target[name]) != attribute.index_of(given[name]):
                raise QueryError(
                    f"target and evidence conflict on attribute {name!r}"
                )
        evidence_probability = self.probability(given)
        if evidence_probability <= 0:
            raise QueryError(f"evidence {dict(given)} has zero probability")
        joint_probability = self.probability({**given, **target})
        return joint_probability / evidence_probability

    def expected_count(
        self, n: int, names: Sequence[str], values: Sequence[int]
    ) -> float:
        """Predicted mean count ``N * p`` of a marginal cell (Eq 33)."""
        ordered = self.schema.canonical_subset(names)
        order = {name: i for i, name in enumerate(names)}
        index = tuple(values[order[name]] for name in ordered)
        return n * float(self.marginal(ordered)[index])

    # -- introspection ------------------------------------------------------------

    def fingerprint(self) -> int:
        """Cheap content hash over every factor, for cache invalidation.

        Inference backends cache expensive artifacts (the dense joint, the
        factor decomposition) keyed by this value, so a model mutated in
        place — as the iterative solvers do mid-fit — never serves stale
        cached answers.
        """
        parts: list[object] = [self.a0]
        for name in self.schema.names:
            parts.append(self.margin_factors[name].tobytes())
        for key in sorted(self.cell_factors):
            parts.append((key, self.cell_factors[key]))
        for names in sorted(self.table_factors):
            parts.append((names, self.table_factors[names].tobytes()))
        return hash(tuple(parts))

    def copy(self) -> "MaxEntModel":
        return MaxEntModel(
            self.schema,
            {k: v.copy() for k, v in self.margin_factors.items()},
            dict(self.cell_factors),
            self.a0,
            {k: v.copy() for k, v in self.table_factors.items()},
        )

    def absorb(self, other: "MaxEntModel") -> None:
        """Adopt another model's factors *in place* (same schema required).

        This is how a live knowledge base swaps in a refitted model without
        replacing the object: every open :class:`~repro.api.session.QuerySession`
        and backend cache holds a reference to *this* model, and their
        freshness checks key on :meth:`fingerprint` — which changes the
        moment the factors do — so they self-invalidate on their next
        operation instead of having to be rebuilt.
        """
        if other.schema != self.schema:
            raise ConstraintError(
                "cannot absorb a model over a different schema: "
                f"{other.schema!r} != {self.schema!r}"
            )
        self.margin_factors = {
            name: vector.copy()
            for name, vector in other.margin_factors.items()
        }
        self.cell_factors = dict(other.cell_factors)
        self.table_factors = {
            names: array.copy()
            for names, array in other.table_factors.items()
        }
        self.a0 = other.a0

    def a_values(self) -> dict[str, float]:
        """Flat named view of all ``a`` factors (for Table-2 style traces).

        Keys look like ``a^SMOKING_1`` (1-based value numbers, matching the
        paper) and ``a^SMOKING,FH_1,2`` for cell factors, plus ``a0``.
        """
        values: dict[str, float] = {"a0": self.a0}
        for name, vector in self.margin_factors.items():
            for index, factor in enumerate(vector):
                values[f"a^{name}_{index + 1}"] = float(factor)
        for (names, cell), factor in self.cell_factors.items():
            joined = ",".join(names)
            digits = ",".join(str(v + 1) for v in cell)
            values[f"a^{joined}_{digits}"] = float(factor)
        for names, array in self.table_factors.items():
            joined = ",".join(names)
            for index in np.ndindex(array.shape):
                digits = ",".join(str(v + 1) for v in index)
                values[f"a^{joined}_{digits}"] = float(array[index])
        return values

    def __repr__(self) -> str:
        return (
            f"MaxEntModel({self.schema!r}, cells={len(self.cell_factors)}, "
            f"a0={self.a0:.6g})"
        )
