"""Iterative proportional fitting of the factored maxent model.

One sweep applies, for every constraint, the exact multiplicative update
that makes the model satisfy that constraint while leaving its factored
form intact:

- a first-order margin scales each value slice by ``target / current``
  (classic IPF; total mass is preserved because targets sum to 1);
- a cell constraint scales the cell slice by ``p / s`` and the complement
  by ``(1 - p) / (1 - s)`` — the IPF step for the binary partition
  {cell, complement}, which is the cell's indicator feature plus
  normalization.

Factor bookkeeping keeps the paper's ``a`` values exact: every slice scaling
multiplies the corresponding ``a`` factor, and complement scalings are
absorbed into ``a0``.  This converges to the same fixed point as the paper's
Gauss–Seidel scheme (:mod:`repro.maxent.gevarter`); the tests assert so.

The sweeps are allocation-lean: the working tensor is created once and every
scaling happens in place (broadcast ``*=`` on the tensor or on a slice), so a
sweep allocates only the small per-constraint ratio arrays instead of one
full-tensor copy per update.  The convergence check reuses the margin sums it
computes: the first-order sums measured for the violation are handed to the
next sweep, whose leading axis would otherwise recompute the identical
reduction on the unchanged tensor.  Both changes are bitwise no-ops on the
iteration path — same IEEE operations, same order — so fitted models are
unchanged to the last ulp.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConstraintError, ConvergenceError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.model import MaxEntModel

_CELL_TARGET_CEILING = 1.0 - 1e-12


@dataclass
class FitResult:
    """Outcome of an iterative fit.

    Attributes
    ----------
    model:
        The fitted model (normalized).
    converged:
        True if the max constraint violation dropped below tolerance.
    sweeps:
        Number of full sweeps performed.
    max_violation:
        Final maximum absolute constraint violation.
    history:
        Max violation after each sweep.
    trace:
        Optional per-sweep snapshots of all named ``a`` values (Table-2
        style); empty unless tracing was requested.
    """

    model: MaxEntModel
    converged: bool
    sweeps: int
    max_violation: float
    history: list[float] = field(default_factory=list)
    trace: list[dict[str, float]] = field(default_factory=list)


def warm_start_model(
    constraints: ConstraintSet, previous: MaxEntModel
) -> MaxEntModel:
    """Initial model for re-fitting ``constraints`` from an earlier fit.

    Keeps the previous margin factors and every cell/table factor that is
    backed by a constraint in the new set, and *drops* the rest.  The drop
    matters: the iterative solvers only update factors their constraints
    name, so a leftover factor from a constraint that is no longer imposed
    would survive the fit untouched and pull the fixed point away from the
    constraint set's maximum-entropy solution (IPF converges to the
    I-projection of its *starting* distribution).  Restricted this way, the
    warm start changes only the convergence speed, never the answer —
    which is what makes the incremental ``update()`` path equivalent to a
    cold refit.
    """
    model = previous.copy()
    keys = constraints.cell_keys()
    model.cell_factors = {
        key: factor
        for key, factor in model.cell_factors.items()
        if key in keys
    }
    subsets = set(constraints.subset_margins)
    model.table_factors = {
        names: array
        for names, array in model.table_factors.items()
        if names in subsets
    }
    return model


def fit_ipf(
    constraints: ConstraintSet,
    initial: MaxEntModel | None = None,
    tol: float = 1e-10,
    max_sweeps: int = 500,
    record_trace: bool = False,
    require_convergence: bool = True,
) -> FitResult:
    """Fit the maxent model satisfying ``constraints`` by IPF sweeps.

    Parameters
    ----------
    constraints:
        Complete constraint set (every attribute must have a margin).
    initial:
        Warm-start model; defaults to the all-ones factor model.  Warm
        starts make the discovery loop's repeated refits cheap, mirroring
        the paper's "starting with the last previously calculated a values".
        When re-fitting after the constraint *set* changed (not just its
        targets), build the initial model with :func:`warm_start_model` so
        stale factors cannot shift the fixed point.
    tol:
        Convergence threshold on the max absolute constraint violation.
    max_sweeps:
        Sweep budget.
    record_trace:
        If True, snapshot all ``a`` values after every sweep.
    require_convergence:
        If True (default) raise :class:`ConvergenceError` when the budget is
        exhausted; otherwise return the best-effort result.
    """
    constraints.validate_complete()
    schema = constraints.schema
    for cell in constraints.cells:
        if cell.probability >= _CELL_TARGET_CEILING:
            raise ConstraintError(
                f"cell constraint {cell.key} has target ~1; degenerate "
                f"constraints must be expressed through margins"
            )

    model = initial.copy() if initial is not None else MaxEntModel(schema)
    for cell in constraints.cells:
        model.cell_factors.setdefault(cell.key, 1.0)
    for names, target in constraints.subset_margins.items():
        if names not in model.table_factors:
            model.table_factors[names] = np.ones(target.shape)

    # The working tensor is allocated once; every subsequent scaling is an
    # in-place broadcast multiply.
    tensor = model.unnormalized()
    tensor *= model.a0
    total = tensor.sum()
    if total <= 0:
        raise ConstraintError("initial model has zero total mass")
    model.a0 /= total
    tensor /= total

    cell_slicers = {
        cell.key: _slicer(schema, cell.attributes, cell.values)
        for cell in constraints.cells
    }

    history: list[float] = []
    trace: list[dict[str, float]] = []
    converged = False
    sweeps = 0
    violation, lead_sums = _max_violation(
        tensor, constraints, cell_slicers, schema
    )
    for sweeps in range(1, max_sweeps + 1):
        _margin_sweep(tensor, constraints, model, schema, lead_sums)
        _subset_margin_sweep(tensor, constraints, model, schema)
        _cell_sweep(tensor, constraints, model, cell_slicers)
        violation, lead_sums = _max_violation(
            tensor, constraints, cell_slicers, schema
        )
        history.append(violation)
        if record_trace:
            trace.append(model.a_values())
        if violation < tol:
            converged = True
            break

    if not converged and require_convergence:
        raise ConvergenceError(
            f"IPF did not converge in {max_sweeps} sweeps "
            f"(max violation {violation:.3g}, tol {tol:.3g})"
        )
    model.normalize()
    return FitResult(
        model=model,
        converged=converged,
        sweeps=sweeps,
        max_violation=violation,
        history=history,
        trace=trace,
    )


def _slicer(schema, names, values) -> tuple:
    slicer: list[slice | int] = [slice(None)] * len(schema)
    for name, value in zip(names, values):
        slicer[schema.axis(name)] = value
    return tuple(slicer)


def _margin_sweep(
    tensor, constraints, model, schema, lead_sums=None
) -> None:
    """One in-place pass over the first-order margins.

    ``lead_sums`` is the leading axis's raw margin sums as last measured
    by :func:`_max_violation`; the tensor has not changed since, so the
    reduction is reused instead of recomputed.  Later axes always
    recompute — the tensor changes under them during the sweep.
    """
    for axis, attribute in enumerate(schema):
        target = constraints.margin(attribute.name)
        if axis == 0 and lead_sums is not None:
            current = lead_sums
        else:
            other_axes = tuple(a for a in range(len(schema)) if a != axis)
            current = tensor.sum(axis=other_axes)
        ratio = np.ones_like(current)
        positive = current > 0
        ratio[positive] = target[positive] / current[positive]
        infeasible = (~positive) & (target > 0)
        if infeasible.any():
            value = int(np.flatnonzero(infeasible)[0])
            raise ConstraintError(
                f"margin target P({attribute.name}={value}) > 0 but the "
                f"model assigns it zero mass (structural conflict)"
            )
        ratio[~positive] = 0.0
        shape = [1] * len(schema)
        shape[axis] = attribute.cardinality
        tensor *= ratio.reshape(shape)
        model.margin_factors[attribute.name] *= ratio


def _subset_margin_sweep(tensor, constraints, model, schema) -> None:
    for names, target in constraints.subset_margins.items():
        axes = schema.axes(names)
        other_axes = tuple(a for a in range(len(schema)) if a not in axes)
        current = tensor.sum(axis=other_axes)
        ratio = np.ones_like(current)
        positive = current > 0
        ratio[positive] = target[positive] / current[positive]
        infeasible = (~positive) & (target > 0)
        if infeasible.any():
            raise ConstraintError(
                f"subset margin for {names} puts mass on a cell the model "
                f"assigns zero (structural conflict)"
            )
        ratio[~positive] = 0.0
        shape = [1] * len(schema)
        for axis in axes:
            shape[axis] = schema.attributes[axis].cardinality
        tensor *= ratio.reshape(shape)
        model.table_factors[names] = model.table_factors[names] * ratio


def _cell_sweep(tensor, constraints, model, cell_slicers) -> None:
    for cell in constraints.cells:
        slicer = cell_slicers[cell.key]
        mass = float(tensor[slicer].sum())
        target = cell.probability
        total = float(tensor.sum())
        share = mass / total
        if target == 0.0:
            if share > 0.0:
                tensor[slicer] = 0.0
                model.cell_factors[cell.key] = 0.0
                rescale = 1.0 / (1.0 - share)
                tensor *= rescale
                model.a0 *= rescale
            continue
        if share <= 0.0:
            raise ConstraintError(
                f"cell target {cell.key} = {target} > 0 but the model "
                f"assigns it zero mass (structural conflict)"
            )
        ratio_in = target / share
        ratio_out = (1.0 - target) / (1.0 - share)
        tensor *= ratio_out
        tensor[slicer] *= ratio_in / ratio_out
        model.cell_factors[cell.key] *= ratio_in / ratio_out
        model.a0 *= ratio_out


def _max_violation(
    tensor, constraints, cell_slicers, schema
) -> tuple[float, np.ndarray]:
    """Max absolute constraint violation, plus the leading axis's raw sums.

    The returned sums let the next :func:`_margin_sweep` skip its first
    reduction (the tensor is untouched between the check and the sweep).
    """
    total = float(tensor.sum())
    worst = abs(total - 1.0)
    lead_sums = None
    for axis, attribute in enumerate(schema):
        target = constraints.margin(attribute.name)
        other_axes = tuple(a for a in range(len(schema)) if a != axis)
        raw = tensor.sum(axis=other_axes)
        if axis == 0:
            lead_sums = raw
        current = raw / total
        worst = max(worst, float(np.abs(current - target).max()))
    for names, target in constraints.subset_margins.items():
        axes = schema.axes(names)
        other_axes = tuple(a for a in range(len(schema)) if a not in axes)
        current = tensor.sum(axis=other_axes) / total
        worst = max(worst, float(np.abs(current - target).max()))
    for cell in constraints.cells:
        share = float(tensor[cell_slicers[cell.key]].sum()) / total
        worst = max(worst, abs(share - cell.probability))
    return worst, lead_sums
