"""The paper's sequential Gauss–Seidel solver for the ``a`` values.

Equations 75-87 solve the constraint equations one scalar at a time, each
``a`` from its own constraint equation holding all the others at their most
recent values, in a fixed published order; Table 2 tabulates the resulting
iteration for the smoking example's first cell constraint.

This module reproduces that scheme generically:

- cell-constraint factors are visited first (the paper starts with ``b``,
  the factor of the new cell constraint, Eq 75);
- then every value of every first-order margin is solved individually
  (Eqs 76-86);
- the normalization factor ``a0`` is solved last from Eq 87.

Each scalar update sets its ``a`` so its own constraint equation holds
exactly given the other factors.  The fixed point is the same maxent
distribution :func:`repro.maxent.ipf.fit_ipf` converges to (the constraint
system has a unique positive solution); the tests assert agreement.

Unlike the IPF path this recomputes dense sums on every scalar update, which
is what makes the per-iteration trace match the paper's table row for row in
spirit — fidelity over speed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConstraintError, ConvergenceError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import FitResult
from repro.maxent.model import MaxEntModel


def fit_gevarter(
    constraints: ConstraintSet,
    initial: MaxEntModel | None = None,
    tol: float = 1e-10,
    max_sweeps: int = 500,
    record_trace: bool = True,
    require_convergence: bool = True,
) -> FitResult:
    """Fit the maxent model with the paper's sequential scalar updates.

    Parameters mirror :func:`repro.maxent.ipf.fit_ipf`.  ``record_trace``
    defaults to True here because the trace *is* the point of this solver
    (Table 2); each trace row is the full named ``a``-value snapshot after
    one sweep.

    When no ``initial`` model is given the solver starts from the
    first-order solution ``a_i = p_i`` (the paper's Eq 60 starting point:
    "Initially, the a values are calculated from the first-order
    probabilities").  When warm-starting across a *changed* constraint set
    (Figure 4's "last previously calculated a values"), build the initial
    model with :func:`repro.maxent.ipf.warm_start_model` — factors with no
    matching constraint are never re-solved here, so leftovers would
    distort the fixed point.
    """
    constraints.validate_complete()
    if constraints.subset_margins:
        raise ConstraintError(
            "the Gevarter solver implements the paper's single-cell "
            "constraint equations; whole-subset marginal constraints are "
            "the log-linear extension — fit them with fit_ipf"
        )
    schema = constraints.schema

    if initial is not None:
        model = initial.copy()
    else:
        model = MaxEntModel.independent(
            schema,
            {name: constraints.margin(name) for name in schema.names},
        )
    for cell in constraints.cells:
        model.cell_factors.setdefault(cell.key, 1.0)

    cell_slicers = {
        cell.key: _slicer(schema, cell.attributes, cell.values)
        for cell in constraints.cells
    }

    history: list[float] = []
    trace: list[dict[str, float]] = []
    if record_trace:
        trace.append(model.a_values())

    converged = False
    sweeps = 0
    violation = np.inf
    for sweeps in range(1, max_sweeps + 1):
        # Cell factors first (the paper's Eq 75 solves b before the rest).
        for cell in constraints.cells:
            _solve_cell_factor(model, cell, cell_slicers[cell.key])
        # Then each first-order a, value by value (Eqs 76-86).
        for attribute in schema:
            target = constraints.margin(attribute.name)
            for value in range(attribute.cardinality):
                _solve_margin_factor(model, attribute.name, value, target[value])
        # Finally a0 from the normalization equation (Eq 87).
        total = model.unnormalized().sum()
        if total <= 0:
            raise ConstraintError("model lost all mass during fitting")
        model.a0 = 1.0 / total

        violation = _max_violation(model, constraints, cell_slicers)
        history.append(violation)
        if record_trace:
            trace.append(model.a_values())
        if violation < tol:
            converged = True
            break

    if not converged and require_convergence:
        raise ConvergenceError(
            f"Gevarter iteration did not converge in {max_sweeps} sweeps "
            f"(max violation {violation:.3g}, tol {tol:.3g})"
        )
    model.normalize()
    return FitResult(
        model=model,
        converged=converged,
        sweeps=sweeps,
        max_violation=float(violation),
        history=history,
        trace=trace,
    )


def _slicer(schema, names, values) -> tuple:
    slicer: list[slice | int] = [slice(None)] * len(schema)
    for name, value in zip(names, values):
        slicer[schema.axis(name)] = value
    return tuple(slicer)


def _solve_cell_factor(model: MaxEntModel, cell, slicer) -> None:
    """Set the cell's ``a`` so ``a0 * a * S = p`` holds (Eq 72's pattern).

    ``S`` is the sum of all other factors over the constrained slice, i.e.
    the slice mass with this factor divided out.
    """
    tensor = model.unnormalized()
    total = tensor.sum()
    if total <= 0:
        raise ConstraintError("model lost all mass during fitting")
    current_factor = model.cell_factors[cell.key]
    slice_mass = float(tensor[slicer].sum())
    rest_mass = float(total - slice_mass)
    if current_factor == 0.0:
        if cell.probability == 0.0:
            return
        raise ConstraintError(
            f"cell factor for {cell.key} collapsed to zero but target is "
            f"{cell.probability}"
        )
    base = slice_mass / current_factor
    if base <= 0:
        raise ConstraintError(
            f"cell target {cell.key} = {cell.probability} > 0 but the model "
            f"assigns the cell zero structural mass"
        )
    # p = a*base / (a*base + rest)  =>  a = p*rest / ((1-p)*base).
    p = cell.probability
    model.cell_factors[cell.key] = (p * rest_mass) / ((1.0 - p) * base)


def _solve_margin_factor(
    model: MaxEntModel, name: str, value: int, target: float
) -> None:
    """Set one margin scalar ``a_i`` from its own constraint equation."""
    schema = model.schema
    axis = schema.axis(name)
    tensor = model.unnormalized()
    other_axes = tuple(a for a in range(len(schema)) if a != axis)
    slice_masses = tensor.sum(axis=other_axes)
    current_factor = float(model.margin_factors[name][value])
    slice_mass = float(slice_masses[value])
    rest_mass = float(slice_masses.sum() - slice_mass)
    if current_factor == 0.0:
        if target == 0.0:
            return
        raise ConstraintError(
            f"margin factor a^{name}_{value + 1} collapsed to zero but "
            f"target is {target}"
        )
    base = slice_mass / current_factor
    if target == 0.0:
        model.margin_factors[name][value] = 0.0
        return
    if base <= 0:
        raise ConstraintError(
            f"margin target P({name}={value}) = {target} > 0 but the model "
            f"assigns the value zero structural mass"
        )
    if rest_mass <= 0:
        # Degenerate attribute: this value carries all mass; any positive
        # factor satisfies p = 1. Keep it unchanged.
        return
    model.margin_factors[name][value] = (target * rest_mass) / (
        (1.0 - target) * base
    )


def _max_violation(model, constraints, cell_slicers) -> float:
    tensor = model.unnormalized()
    total = float(tensor.sum())
    schema = model.schema
    worst = 0.0
    for axis, attribute in enumerate(schema):
        target = constraints.margin(attribute.name)
        other_axes = tuple(a for a in range(len(schema)) if a != axis)
        current = tensor.sum(axis=other_axes) / total
        worst = max(worst, float(np.abs(current - target).max()))
    for cell in constraints.cells:
        share = float(tensor[cell_slicers[cell.key]].sum()) / total
        worst = max(worst, abs(share - cell.probability))
    return worst
