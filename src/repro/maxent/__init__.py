"""Maximum-entropy engine: factored model, constraints, solvers, queries."""

from repro.maxent.constraints import CellConstraint, ConstraintSet
from repro.maxent.dual import fit_dual
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import FitResult, fit_ipf
from repro.maxent.model import MaxEntModel

__all__ = [
    "CellConstraint",
    "ConstraintSet",
    "FitResult",
    "MaxEntModel",
    "fit_dual",
    "fit_gevarter",
    "fit_ipf",
]
