"""Empirical (saturated) baseline: the raw relative frequencies.

The opposite extreme to independence: every joint cell gets exactly its
observed frequency.  This satisfies *all* possible constraints and so has
the minimum entropy compatible with the data — the paper's method sits
between the two extremes, keeping only the constraints the data can
statistically justify.

Optional Laplace (add-alpha) smoothing keeps unseen cells queryable, the
standard fix for the saturated model's zero-probability pathology.
"""

from __future__ import annotations

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.exceptions import DataError
from repro.maxent.model import MaxEntModel


def empirical_joint(
    table: ContingencyTable, smoothing: float = 0.0
) -> np.ndarray:
    """The (optionally smoothed) empirical joint probability tensor."""
    if smoothing < 0:
        raise DataError(f"smoothing must be >= 0, got {smoothing}")
    counts = table.counts.astype(float) + smoothing
    total = counts.sum()
    if total <= 0:
        raise DataError("empty table with no smoothing has no distribution")
    return counts / total


def empirical_model(
    table: ContingencyTable, smoothing: float = 0.0
) -> MaxEntModel:
    """The saturated model wrapped in the common model interface.

    Implementation detail: the joint is encoded via uniform margin factors
    and one cell factor per joint cell, so all downstream machinery
    (queries, rules, elimination) works unchanged.
    """
    joint = empirical_joint(table, smoothing)
    schema = table.schema
    cell_factors = {}
    names = schema.names
    for index in np.ndindex(schema.shape):
        cell_factors[(names, tuple(int(i) for i in index))] = float(
            joint[index]
        )
    return MaxEntModel(schema, None, cell_factors, a0=1.0)
