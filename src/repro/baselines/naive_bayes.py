"""Naive Bayes classifier baseline.

The paper motivates its output as decision aids; the commercial systems it
cites (Expert-Ease, TIMM) build classifiers from examples.  Naive Bayes is
the classical probabilistic classifier over the same contingency data:
``P(class | features) ∝ P(class) · Π P(feature | class)``.

It serves two roles: a prediction-quality comparator for the knowledge
base's conditional queries, and a demonstration that the substrate
(schemas, tables, marginals) supports conventional learners too.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.exceptions import DataError, QueryError


class NaiveBayesClassifier:
    """Categorical naive Bayes fitted from a contingency table.

    Parameters
    ----------
    table:
        Observed counts.
    class_attribute:
        The attribute to predict.
    smoothing:
        Laplace smoothing added to every (feature value, class) count.
    """

    def __init__(
        self,
        table: ContingencyTable,
        class_attribute: str,
        smoothing: float = 1.0,
    ):
        if smoothing < 0:
            raise DataError(f"smoothing must be >= 0, got {smoothing}")
        schema = table.schema
        self.schema = schema
        self.class_attribute = class_attribute
        self.smoothing = smoothing
        class_attr = schema.attribute(class_attribute)

        class_counts = table.marginal([class_attribute]).astype(float)
        prior = class_counts + smoothing
        self.class_prior = prior / prior.sum()

        self.feature_likelihoods: dict[str, np.ndarray] = {}
        for attribute in schema:
            if attribute.name == class_attribute:
                continue
            pair = table.marginal(
                schema.canonical_subset([attribute.name, class_attribute])
            ).astype(float)
            # Orient as (feature value, class value).
            if schema.axis(attribute.name) > schema.axis(class_attribute):
                pair = pair.T
            pair = pair + smoothing
            column_totals = pair.sum(axis=0, keepdims=True)
            if (column_totals == 0).any():
                raise DataError(
                    f"class value with zero mass and no smoothing for "
                    f"attribute {attribute.name!r}"
                )
            self.feature_likelihoods[attribute.name] = pair / column_totals
        self._num_classes = class_attr.cardinality

    def class_distribution(
        self, features: Mapping[str, str | int]
    ) -> dict[str, float]:
        """Posterior ``P(class | features)`` for the given evidence."""
        if self.class_attribute in features:
            raise QueryError(
                f"evidence fixes the class attribute "
                f"{self.class_attribute!r}"
            )
        log_posterior = np.log(self.class_prior)
        for name, value in features.items():
            attribute = self.schema.attribute(name)
            if name == self.class_attribute:
                continue
            if name not in self.feature_likelihoods:
                raise QueryError(f"unknown feature attribute {name!r}")
            index = attribute.index_of(value)
            likelihood = self.feature_likelihoods[name][index]
            if (likelihood == 0).all():
                raise QueryError(
                    f"feature {name}={value} has zero likelihood under "
                    f"every class"
                )
            with np.errstate(divide="ignore"):
                log_posterior = log_posterior + np.log(likelihood)
        log_posterior -= log_posterior.max()
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum()
        class_attr = self.schema.attribute(self.class_attribute)
        return {
            class_attr.value_at(i): float(p) for i, p in enumerate(posterior)
        }

    def predict(self, features: Mapping[str, str | int]) -> str:
        """Most probable class value given the evidence."""
        distribution = self.class_distribution(features)
        return max(distribution, key=lambda k: distribution[k])
