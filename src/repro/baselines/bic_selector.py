"""BIC greedy selection: the modern model-selection comparator.

Scores each candidate cell constraint by the Bayesian Information
Criterion improvement it would bring: twice the log-likelihood gain of the
refitted model on the observed counts, minus ``ln N`` for the added
parameter.  Greedily adopts the best candidate while any improvement is
positive.  This is how one would attack the paper's problem with standard
log-linear model-selection machinery (cf. bnlearn / pgmpy score-based
structure search); it serves as the third arm of ablation A1.

The exact score requires a refit per candidate, which is the textbook cost
of score-based search; a cheap screening bound (the single-cell likelihood
gain, an upper bound on the full gain) prunes candidates that cannot win.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.exceptions import ConstraintError, DataError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel


@dataclass(frozen=True)
class BICSelectorConfig:
    """Settings for the greedy BIC selector."""

    max_order: int | None = None
    tol: float = 1e-10
    max_sweeps: int = 500
    max_constraints: int | None = None
    penalty_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.penalty_multiplier <= 0:
            raise DataError(
                f"penalty_multiplier must be positive, got "
                f"{self.penalty_multiplier}"
            )


@dataclass
class BICStep:
    """One adopted constraint with its score improvement."""

    attributes: tuple[str, ...]
    values: tuple[int, ...]
    delta_bic: float


@dataclass
class BICResult:
    """Outcome of the greedy BIC search."""

    model: MaxEntModel
    constraints: ConstraintSet
    steps: list[BICStep]

    @property
    def found(self):
        return self.constraints.cells


def log_likelihood(table: ContingencyTable, model: MaxEntModel) -> float:
    """Multinomial log-likelihood of the table under the model."""
    joint = model.joint()
    counts = table.counts
    mask = counts > 0
    if (joint[mask] <= 0).any():
        return float("-inf")
    return float((counts[mask] * np.log(joint[mask])).sum())


def discover_bic(
    table: ContingencyTable, config: BICSelectorConfig | None = None
) -> BICResult:
    """Greedy BIC forward selection of cell constraints."""
    config = config or BICSelectorConfig()
    if table.total == 0:
        raise DataError("cannot run discovery on an empty table")
    schema = table.schema
    constraints = ConstraintSet.first_order(table)
    model = MaxEntModel.independent(
        schema, {n: constraints.margin(n) for n in schema.names}
    )
    steps: list[BICStep] = []
    penalty = config.penalty_multiplier * log(table.total)
    highest = min(config.max_order or len(schema), len(schema))

    for order in range(2, highest + 1):
        while True:
            if (
                config.max_constraints is not None
                and len(constraints.cells) >= config.max_constraints
            ):
                break
            base_ll = log_likelihood(table, model)
            best = None
            for subset, values, observed in table.cells_of_order(order):
                if constraints.has_cell((subset, values)):
                    continue
                gain = _screening_gain(table, model, subset, values, observed)
                if gain <= penalty / 2.0:
                    continue
                candidate = constraints.copy()
                try:
                    candidate.add_cell(
                        candidate.cell_from_table(table, subset, values)
                    )
                    fit = fit_ipf(
                        candidate,
                        initial=model,
                        tol=config.tol,
                        max_sweeps=config.max_sweeps,
                        require_convergence=False,
                    )
                except ConstraintError:
                    continue
                delta = 2.0 * (log_likelihood(table, fit.model) - base_ll) - penalty
                if delta > 0 and (best is None or delta > best[0]):
                    best = (delta, subset, values, candidate, fit.model)
            if best is None:
                break
            delta, subset, values, constraints, model = best
            steps.append(
                BICStep(attributes=subset, values=values, delta_bic=delta)
            )
    return BICResult(model=model, constraints=constraints, steps=steps)


def _screening_gain(table, model, subset, values, observed) -> float:
    """Upper bound on the log-likelihood gain from constraining one cell.

    Moving only the cell's own probability from the model value ``q`` to
    the empirical value ``p`` gains at most ``N * KL(Bern(p) || Bern(q))``
    over the binary partition {cell, complement}, which upper-bounds the
    constrained refit's gain.
    """
    n = table.total
    p = observed / n
    q = model.probability(dict(zip(subset, values)))
    if q <= 0.0 or q >= 1.0:
        return float("inf") if 0.0 < p < 1.0 else 0.0
    gain = 0.0
    if p > 0:
        gain += p * log(p / q)
    if p < 1:
        gain += (1 - p) * log((1 - p) / (1 - q))
    return n * gain
