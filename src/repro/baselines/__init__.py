"""Baselines: independence, saturated, chi-square / BIC selectors, NB."""

from repro.baselines.bic_selector import BICResult, BICSelectorConfig, discover_bic
from repro.baselines.chi2_selector import Chi2SelectorConfig, discover_chi2
from repro.baselines.empirical import empirical_joint, empirical_model
from repro.baselines.independence import independence_model
from repro.baselines.loglinear import (
    LogLinearConfig,
    LogLinearResult,
    discover_loglinear,
)
from repro.baselines.naive_bayes import NaiveBayesClassifier

__all__ = [
    "BICResult",
    "BICSelectorConfig",
    "Chi2SelectorConfig",
    "LogLinearConfig",
    "LogLinearResult",
    "NaiveBayesClassifier",
    "discover_bic",
    "discover_chi2",
    "discover_loglinear",
    "empirical_joint",
    "empirical_model",
    "independence_model",
]
