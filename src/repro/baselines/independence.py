"""Independence baseline: the model with no discovered constraints.

This is the paper's starting point (Eq 61: with only first-order
constraints the maxent joint is the product of the margins).  As a
baseline it answers every query assuming all attributes are independent —
the floor any discovery method must beat.
"""

from __future__ import annotations

from repro.data.contingency import ContingencyTable
from repro.maxent.model import MaxEntModel


def independence_model(table: ContingencyTable) -> MaxEntModel:
    """The first-order maxent model ``p_ijk = p_i p_j p_k`` for a table."""
    margins = {
        attribute.name: table.first_order_probabilities(attribute.name)
        for attribute in table.schema
    }
    return MaxEntModel.independent(table.schema, margins)
