"""Chi-square-driven constraint selection: the classical alternative.

Identical control flow to the paper's Figure-3 loop, but the selection
criterion is a per-cell two-sided z test (normal approximation to the
binomial) at a fixed significance level, optionally Bonferroni-corrected
for the number of cells scanned.  Comparing this selector against the MML
selector on planted-correlation data is ablation A1 in DESIGN.md: the MML
criterion adapts its threshold to N and to the cell's feasible range, the
z test does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.contingency import ContingencyTable
from repro.discovery.trace import DiscoveryResult, ScanRecord
from repro.exceptions import ConstraintError, DataError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel
from repro.significance.chi2 import cell_z_test
from repro.significance.mml import MMLPriors, evaluate_cell


@dataclass(frozen=True)
class Chi2SelectorConfig:
    """Settings for the chi-square selector.

    ``alpha`` is the per-test significance level; with ``bonferroni`` it is
    divided by the number of candidate cells at the current order.
    """

    alpha: float = 0.05
    bonferroni: bool = True
    max_order: int | None = None
    tol: float = 1e-10
    max_sweeps: int = 500
    max_constraints: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise DataError(f"alpha must be in (0, 1), got {self.alpha}")


def discover_chi2(
    table: ContingencyTable, config: Chi2SelectorConfig | None = None
) -> DiscoveryResult:
    """Run the discovery loop with the z/chi-square criterion.

    Returns the same :class:`DiscoveryResult` structure as the MML engine;
    the recorded :class:`CellTest` rows are MML-style evaluations (so the
    two selectors are directly comparable), but the *selection* is by
    z-test p-value.
    """
    config = config or Chi2SelectorConfig()
    if table.total == 0:
        raise DataError("cannot run discovery on an empty table")
    schema = table.schema
    constraints = ConstraintSet.first_order(table)
    model = MaxEntModel.independent(
        schema, {n: constraints.margin(n) for n in schema.names}
    )
    result = DiscoveryResult(table=table, model=model, constraints=constraints)
    priors = MMLPriors.equal()

    highest = min(config.max_order or len(schema), len(schema))
    for order in range(2, highest + 1):
        while True:
            candidates = []
            pool = table.num_cells_of_order(order) - len(
                constraints.cells_of_order(order)
            )
            threshold = config.alpha / pool if config.bonferroni else config.alpha
            tests = []
            for subset, values, observed in table.cells_of_order(order):
                if constraints.has_cell((subset, values)):
                    continue
                tests.append(
                    evaluate_cell(
                        table, model, subset, values, constraints, priors, pool
                    )
                )
                probability = model.probability(dict(zip(subset, values)))
                _z, p_value = cell_z_test(observed, table.total, probability)
                if p_value < threshold:
                    candidates.append((p_value, subset, values))
            capped = (
                config.max_constraints is not None
                and len(constraints.cells) >= config.max_constraints
            )
            if not candidates or capped:
                result.scans.append(ScanRecord(order=order, tests=tests, chosen=None))
                break
            candidates.sort(key=lambda item: item[0])
            _p, subset, values = candidates[0]
            constraint = constraints.cell_from_table(table, subset, values)
            try:
                constraints.add_cell(constraint)
            except ConstraintError:
                result.scans.append(ScanRecord(order=order, tests=tests, chosen=None))
                break
            fit = fit_ipf(
                constraints,
                initial=model,
                tol=config.tol,
                max_sweeps=config.max_sweeps,
            )
            model = fit.model
            chosen = next(
                t for t in tests if t.attributes == subset and t.values == values
            )
            result.scans.append(
                ScanRecord(
                    order=order, tests=tests, chosen=chosen, fit_sweeps=fit.sweeps
                )
            )
    result.model = model
    return result
