"""Hierarchical log-linear forward selection (the Cheeseman-style comparator).

The paper's cited predecessor (Cheeseman 1983) and the classical
log-linear literature constrain *whole* marginal tables — one factor table
per interaction subset — where the paper constrains single cells.  This
module implements that family: greedy forward selection over attribute
subsets, adding the subset whose observed marginal deviates most from the
current model (by the likelihood-ratio G² test) until nothing is
significant.

Comparing against the paper's cell-based discovery shows the trade-off the
paper's design makes: whole-margin models spend ``(I·J − 1)``-ish
parameters per adopted pair even when a single cell carries all the
signal, while the cell-based model spends exactly one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.contingency import ContingencyTable
from repro.exceptions import DataError, StaleConstraintError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel
from repro.significance.chi2 import marginal_g2


@dataclass(frozen=True)
class LogLinearConfig:
    """Settings for the log-linear forward selection."""

    alpha: float = 0.01
    max_order: int | None = None
    tol: float = 1e-10
    max_sweeps: int = 500
    max_terms: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise DataError(f"alpha must be in (0, 1), got {self.alpha}")


@dataclass
class LogLinearStep:
    """One adopted interaction subset with its test statistics."""

    attributes: tuple[str, ...]
    g2: float
    dof: int
    p_value: float


@dataclass
class LogLinearResult:
    """Outcome of the forward selection."""

    model: MaxEntModel
    constraints: ConstraintSet
    steps: list[LogLinearStep] = field(default_factory=list)

    @property
    def found_subsets(self) -> list[tuple[str, ...]]:
        return [step.attributes for step in self.steps]

    def num_interaction_parameters(self) -> int:
        """Free parameters spent on interactions (cells minus the sums
        already fixed by lower-order margins — the standard log-linear
        dof count for a two-way term is ``(I-1)(J-1)``, etc.)."""
        total = 0
        for names in self.constraints.subset_margins:
            dof = 1
            for name in names:
                dof *= self.model.schema.attribute(name).cardinality - 1
            total += dof
        return total


def discover_loglinear(
    table: ContingencyTable,
    config: LogLinearConfig | None = None,
    warm_start: LogLinearResult | None = None,
) -> LogLinearResult:
    """Greedy forward selection of whole-marginal interaction terms.

    At each step, every not-yet-adopted subset at the current order is
    G²-tested against the fitted model; the most significant one (smallest
    p below ``alpha``) is adopted as a full marginal constraint and the
    model refitted.  Orders are processed 2..max like the paper's loop.

    With ``warm_start`` (a previous run's result, for incrementally
    updated tables) each order re-imposes that order's previously adopted
    subsets before its candidate sweep — mirroring the cold loop's
    order-by-order progression, so a pair that became significant inside
    an adopted higher-order term is still seen at order 2.  Every
    re-imposed term is first re-verified with the G² test against the
    current model (the same test a cold selection would apply at that
    point), retargeted at the new table's marginals, and refitted from
    the previous factor tables; the candidate sweep then only has to look
    for *new* terms, the expensive part of the selection.  A re-imposed
    term that is no longer significant raises
    :class:`StaleConstraintError`; callers should fall back to a cold
    run, which is free to drop it.
    """
    config = config or LogLinearConfig()
    if table.total == 0:
        raise DataError("cannot run discovery on an empty table")
    schema = table.schema
    constraints = ConstraintSet.first_order(table)
    model = MaxEntModel.independent(
        schema, {n: constraints.margin(n) for n in schema.names}
    )
    result = LogLinearResult(model=model, constraints=constraints)

    warm_steps: dict[int, list[LogLinearStep]] = {}
    if warm_start is not None:
        if warm_start.model.schema != schema:
            raise DataError(
                "warm-start result schema does not match the table schema"
            )
        for step in warm_start.steps:
            warm_steps.setdefault(len(step.attributes), []).append(step)

    highest = min(config.max_order or len(schema), len(schema))
    for order in range(2, highest + 1):
        for step in warm_steps.get(order, []):
            if (
                config.max_terms is not None
                and len(constraints.subset_margins) >= config.max_terms
            ):
                # Same cap the cold sweep enforces; re-imposition follows
                # the original adoption order, so the first max_terms
                # survive, as in a capped cold run over stable data.
                break
            subset = step.attributes
            if constraints.has_subset_margin(subset):
                continue
            g2, dof, p_value = marginal_g2(table, model, subset)
            if p_value >= config.alpha:
                raise StaleConstraintError(
                    f"previously adopted margin over {subset} is no longer "
                    f"significant on the updated table (p={p_value:.3g}, "
                    f"alpha={config.alpha})"
                )
            constraints.set_subset_margin(
                subset, constraints.subset_margin_from_table(table, subset)
            )
            initial = model.copy()
            if subset in warm_start.model.table_factors:
                initial.table_factors[subset] = (
                    warm_start.model.table_factors[subset].copy()
                )
            fit = fit_ipf(
                constraints,
                initial=initial,
                tol=config.tol,
                max_sweeps=config.max_sweeps,
            )
            model = fit.model
            result.steps.append(
                LogLinearStep(
                    attributes=subset, g2=g2, dof=dof, p_value=p_value
                )
            )
        while True:
            if (
                config.max_terms is not None
                and len(constraints.subset_margins) >= config.max_terms
            ):
                break
            best: tuple[float, tuple[str, ...], float, int] | None = None
            for subset in table.subsets_of_order(order):
                if constraints.has_subset_margin(subset):
                    continue
                g2, dof, p_value = marginal_g2(table, model, subset)
                if p_value < config.alpha:
                    if best is None or p_value < best[0]:
                        best = (p_value, subset, g2, dof)
            if best is None:
                break
            p_value, subset, g2, dof = best
            constraints.set_subset_margin(
                subset, constraints.subset_margin_from_table(table, subset)
            )
            fit = fit_ipf(
                constraints,
                initial=model,
                tol=config.tol,
                max_sweeps=config.max_sweeps,
            )
            model = fit.model
            result.steps.append(
                LogLinearStep(
                    attributes=subset, g2=g2, dof=dof, p_value=p_value
                )
            )
    result.model = model
    result.constraints = constraints
    return result
