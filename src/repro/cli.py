"""Command-line interface: regenerate paper artifacts and run the pipeline.

Usage::

    repro figure1            # Figure 1 contingency tables
    repro figure2            # Figure 2 marginals
    repro table1             # Table 1 significance scan
    repro table2             # Table 2 a-value iteration
    repro discover           # full Figure-3 run on the paper data
    repro discover --csv data.csv --save kb.json   # fit and save (format 3)
    repro discover --workers 4                  # sharded scans, same answers
    repro update --kb kb.json --csv delta.csv      # warm-started update
    repro rules              # IF-THEN rules from the paper data
    repro recovery           # A1 selector-recovery ablation
    repro query "CANCER=yes | SMOKING=smoker"   # probability queries
    repro query --batch queries.txt --backend elimination
    repro query --batch queries.txt --workers 4 # concurrent batch serving
    repro query --mpe --given "SMOKING=smoker"  # most probable explanation
    repro scenarios list                        # registered workloads
    repro scenarios list --tier stress          # just the stress tier
    repro scenarios list --markdown             # docs/scenarios.md catalog
    repro scenarios run --smoke --json -        # conformance matrix (CI gate)
    repro scenarios run --smoke --workers 2     # parallel-equivalence pass
    repro scenarios run --tier stress --smoke   # nightly stress matrix
    repro scorecard --registry runs.db          # cross-run scenario scorecard
    repro serve                                 # serve the paper KB over HTTP
    repro serve --kb prod=kb.json --port 8741   # serve saved knowledge bases
    repro discover --store kb.db --name prod    # fit into the durable store
    repro update --store kb.db --name prod --csv delta.csv
    repro history prod --store kb.db            # list persisted revisions
    repro diff prod 0 2 --store kb.db           # diff two revisions
    repro serve --store kb.db                   # serve + persist every update
    repro runs import BENCH_discovery.json --registry runs.db
    repro runs list --registry runs.db          # recorded benchmark/scenario runs
    repro worker --listen 127.0.0.1:8950        # remote worker daemon
    repro discover --workers-remote 10.0.0.2:8950,10.0.0.3:8950
    repro query --batch queries.txt --workers-remote 10.0.0.2:8950
    repro serve --workers-remote 10.0.0.2:8950,10.0.0.3:8950
"""

from __future__ import annotations

import argparse
import sys

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.data.io import read_dataset_csv
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.eval import harness
from repro.eval.paper import paper_table


def _worker_count(text: str) -> int:
    """argparse type for --workers: a positive int (argparse exits 2)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _worker_addresses(text: str) -> tuple[str, ...]:
    """argparse type for --workers-remote: comma-separated HOST:PORT list."""
    from repro.distributed import parse_worker_addresses
    from repro.exceptions import ParallelError

    try:
        addresses = parse_worker_addresses(text)
    except ParallelError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    if not addresses:
        raise argparse.ArgumentTypeError(
            "expected at least one HOST:PORT address"
        )
    return addresses


_WORKERS_REMOTE_HELP = (
    "comma-separated HOST:PORT list of 'repro worker' daemons to shard "
    "across over TCP (each address is one worker slot; results are "
    "bit-identical to local execution)"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Gevarter (1986): Automatic Probabilistic "
            "Knowledge Acquisition from Data"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("figure1", help="Figure 1 contingency tables")
    subparsers.add_parser("figure2", help="Figure 2 marginal tables")
    subparsers.add_parser("table1", help="Table 1 significance scan")
    subparsers.add_parser("table2", help="Table 2 a-value iteration trace")
    subparsers.add_parser("solvers", help="IPF vs Gevarter comparison")
    subparsers.add_parser("appendixb", help="factored vs dense evaluation")

    discover_parser = subparsers.add_parser(
        "discover", help="run the full discovery pipeline"
    )
    discover_parser.add_argument(
        "--csv", help="CSV dataset to analyse (default: the paper's data)"
    )
    discover_parser.add_argument(
        "--max-order", type=int, default=None, help="highest order to scan"
    )
    discover_parser.add_argument(
        "--save",
        help=(
            "save the fitted knowledge base (format 3, with the audit "
            "trail, so it can be updated later with 'repro update')"
        ),
    )
    discover_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a per-stage timing table (scan / fit / verify) from "
            "the discovery kernels' instrumentation, to stderr so stdout "
            "stays the summary"
        ),
    )
    discover_parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help=(
            "worker processes for the candidate scans (default 1 = "
            "serial; results are bit-identical either way)"
        ),
    )
    discover_parser.add_argument(
        "--workers-remote",
        type=_worker_addresses,
        default=(),
        metavar="HOST:PORT[,...]",
        help=_WORKERS_REMOTE_HELP,
    )
    discover_parser.add_argument(
        "--store",
        help=(
            "persist the fitted knowledge base into this durable store "
            "(SQLite; created if missing) with revision history"
        ),
    )
    discover_parser.add_argument(
        "--name",
        help=(
            "name in the store (with --store; default: the CSV stem, or "
            "'paper' for the paper's data)"
        ),
    )

    update_parser = subparsers.add_parser(
        "update",
        help="absorb new data into a saved knowledge base (warm-started)",
    )
    update_parser.add_argument(
        "--kb", help="saved knowledge-base JSON to update"
    )
    update_parser.add_argument(
        "--csv", required=True, help="CSV dataset with the new observations"
    )
    update_parser.add_argument(
        "--save",
        help="where to write the updated knowledge base (default: --kb)",
    )
    update_parser.add_argument(
        "--store",
        help=(
            "durable store holding the knowledge base (alternative to "
            "--kb); the new revision is persisted back with its artifact"
        ),
    )
    update_parser.add_argument(
        "--name",
        help="name in the store (with --store; default: the only stored KB)",
    )

    history_parser = subparsers.add_parser(
        "history",
        help="list the persisted revision history of a stored knowledge base",
    )
    history_parser.add_argument("name", help="knowledge-base name in the store")
    history_parser.add_argument(
        "--store", required=True, help="durable store path (SQLite)"
    )
    history_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the revision rows as JSON instead of a table",
    )

    diff_parser = subparsers.add_parser(
        "diff",
        help="diff adopted constraints between two persisted revisions",
    )
    diff_parser.add_argument("name", help="knowledge-base name in the store")
    diff_parser.add_argument("revision_a", type=int, help="older revision")
    diff_parser.add_argument("revision_b", type=int, help="newer revision")
    diff_parser.add_argument(
        "--store", required=True, help="durable store path (SQLite)"
    )

    runs_parser = subparsers.add_parser(
        "runs",
        help="inspect or populate the benchmark/scenario run registry",
    )
    runs_sub = runs_parser.add_subparsers(dest="action", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="show recorded runs (id, kind, when, cpus, smoke)"
    )
    runs_list.add_argument(
        "--registry", required=True, help="run-registry path (SQLite)"
    )
    runs_list.add_argument(
        "--kind", help="only runs of this kind (benchmark, scenario)"
    )
    runs_list.add_argument(
        "--smoke",
        action="store_true",
        help="only smoke-mode runs",
    )
    runs_list.add_argument(
        "--full",
        action="store_true",
        help="only full-size runs",
    )
    runs_list.add_argument(
        "--json",
        action="store_true",
        help="emit the run records as JSON instead of a table",
    )
    runs_import = runs_sub.add_parser(
        "import",
        help=(
            "one-shot import of a flat BENCH_discovery.json trajectory "
            "into the registry (idempotent: run_ids derive from content)"
        ),
    )
    runs_import.add_argument(
        "trajectory", help="flat trajectory JSON file to import"
    )
    runs_import.add_argument(
        "--registry", required=True, help="run-registry path (SQLite)"
    )
    runs_show = runs_sub.add_parser(
        "show", help="print one run's full metrics document as JSON"
    )
    runs_show.add_argument("run_id", help="run id (see 'repro runs list')")
    runs_show.add_argument(
        "--registry", required=True, help="run-registry path (SQLite)"
    )

    rules_parser = subparsers.add_parser(
        "rules", help="generate IF-THEN rules with probabilities"
    )
    rules_parser.add_argument("--csv", help="CSV dataset (default: paper data)")
    rules_parser.add_argument(
        "--min-probability", type=float, default=0.5
    )
    rules_parser.add_argument("--min-support", type=float, default=0.01)

    recovery_parser = subparsers.add_parser(
        "recovery", help="A1 selector-recovery ablation"
    )
    recovery_parser.add_argument("--trials", type=int, default=3)
    recovery_parser.add_argument("--seed", type=int, default=0)

    loglinear_parser = subparsers.add_parser(
        "loglinear", help="classical whole-margin log-linear selection"
    )
    loglinear_parser.add_argument("--csv", help="CSV dataset (default: paper data)")
    loglinear_parser.add_argument("--alpha", type=float, default=0.01)

    report_parser = subparsers.add_parser(
        "report", help="regenerate every experiment into one markdown report"
    )
    report_parser.add_argument(
        "--output", help="write to a file instead of stdout"
    )

    query_parser = subparsers.add_parser(
        "query", help="evaluate probability queries against a fitted model"
    )
    query_parser.add_argument(
        "expressions",
        nargs="*",
        help='query strings like "CANCER=yes | SMOKING=smoker"',
    )
    query_parser.add_argument(
        "--csv", help="CSV dataset to fit first (default: the paper's data)"
    )
    query_parser.add_argument(
        "--kb", help="load a saved knowledge-base JSON instead of fitting"
    )
    query_parser.add_argument(
        "--backend",
        default="auto",
        help="inference backend: auto, dense, elimination, or a plugin name",
    )
    query_parser.add_argument(
        "--batch", help="file with one query per line, evaluated as a batch"
    )
    query_parser.add_argument(
        "--mpe",
        action="store_true",
        help="report the most probable explanation instead of a probability",
    )
    query_parser.add_argument(
        "--given", help='evidence for --mpe, e.g. "SMOKING=smoker"'
    )
    query_parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help=(
            "worker processes for batch evaluation (default 1 = "
            "in-process); each worker keeps its own plan/marginal caches"
        ),
    )
    query_parser.add_argument(
        "--workers-remote",
        type=_worker_addresses,
        default=(),
        metavar="HOST:PORT[,...]",
        help=_WORKERS_REMOTE_HELP,
    )

    scenarios_parser = subparsers.add_parser(
        "scenarios",
        help="list or run the scenario conformance matrix",
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="action", required=True
    )
    scenarios_list = scenarios_sub.add_parser(
        "list", help="show the registered scenario workloads"
    )
    scenarios_list.add_argument(
        "--tier",
        action="append",
        choices=["smoke", "full", "stress", "all"],
        metavar="TIER",
        help=(
            "only scenarios in this tier (repeatable; smoke/full/stress/"
            "all; default: all tiers)"
        ),
    )
    scenarios_list.add_argument(
        "--markdown",
        action="store_true",
        help=(
            "emit the full markdown scenario catalog (the generator "
            "behind docs/scenarios.md)"
        ),
    )
    scenarios_run = scenarios_sub.add_parser(
        "run",
        help=(
            "run discovery + baselines on every registered scenario, "
            "score conformance, and fail on any gate miss"
        ),
    )
    scenarios_run.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    scenarios_run.add_argument(
        "--tier",
        action="append",
        choices=["smoke", "full", "stress", "all"],
        metavar="TIER",
        help=(
            "run only scenarios in this tier (repeatable; smoke/full/"
            "stress/all; default: smoke+full — stress is opt-in)"
        ),
    )
    scenarios_run.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "small sample sizes (also enabled by REPRO_BENCH_SMOKE=1, "
            "the CI convention)"
        ),
    )
    scenarios_run.add_argument(
        "--full",
        action="store_true",
        help="force full sample sizes even under REPRO_BENCH_SMOKE=1",
    )
    scenarios_run.add_argument(
        "--no-baselines",
        action="store_true",
        help="skip the chi-square / BIC baseline selectors",
    )
    scenarios_run.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "emit per-scenario metrics as JSON to PATH ('-' or no value: "
            "stdout); the human-readable report then goes to stderr so "
            "stdout stays machine-parseable"
        ),
    )
    scenarios_run.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help=(
            "worker processes for each scenario's discovery scans "
            "(default 1 = serial; conformance metrics are bit-identical)"
        ),
    )
    scenarios_run.add_argument(
        "--registry",
        metavar="PATH",
        help=(
            "record every scenario outcome in this run registry "
            "(SQLite; created if missing) under a content-derived run_id"
        ),
    )

    scorecard_parser = subparsers.add_parser(
        "scorecard",
        help=(
            "aggregate recorded scenario outcomes across runs into one "
            "markdown/JSON scorecard"
        ),
    )
    scorecard_parser.add_argument(
        "--registry",
        required=True,
        metavar="PATH",
        help="run registry (SQLite) holding recorded scenario outcomes",
    )
    scorecard_parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the markdown scorecard here (default: stdout)",
    )
    scorecard_parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the scorecard as JSON to PATH",
    )
    scorecard_parser.add_argument(
        "--smoke",
        action="store_true",
        help="aggregate only smoke-size outcomes",
    )
    scorecard_parser.add_argument(
        "--full",
        action="store_true",
        help="aggregate only full-size outcomes",
    )
    scorecard_parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any scenario is failing or regressed",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "serve knowledge bases over HTTP + WebSocket (query, batch, "
            "mpe, explain, hot-swapping update, revision subscriptions)"
        ),
    )
    serve_parser.add_argument(
        "--kb",
        action="append",
        metavar="NAME=PATH",
        help=(
            "host a saved knowledge-base JSON under NAME (repeatable); "
            "default: the paper's data as 'paper'"
        ),
    )
    serve_parser.add_argument(
        "--csv",
        help="fit a knowledge base from this CSV and host it as 'data'",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8741,
        help="bind port (0 = ephemeral, printed at startup)",
    )
    serve_parser.add_argument(
        "--flush-ms",
        type=float,
        default=2.0,
        help=(
            "request-coalescing flush window in milliseconds "
            "(0 disables coalescing)"
        ),
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="flush a coalesced batch as soon as it reaches this size",
    )
    serve_parser.add_argument(
        "--pool-size",
        type=int,
        default=4,
        help="warm query sessions retained per knowledge base",
    )
    serve_parser.add_argument(
        "--backend",
        default="auto",
        help="inference backend for pooled sessions",
    )
    serve_parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help=(
            "worker processes per pooled session for batch evaluation "
            "(default 1 = in-process)"
        ),
    )
    serve_parser.add_argument(
        "--workers-remote",
        type=_worker_addresses,
        default=(),
        metavar="HOST:PORT[,...]",
        help=_WORKERS_REMOTE_HELP,
    )
    serve_parser.add_argument(
        "--store",
        help=(
            "durable store (SQLite): host every stored knowledge base at "
            "its latest revision and persist hosted updates back, so a "
            "restarted server resumes where the previous one stopped"
        ),
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help=(
            "run a remote worker daemon: holds pinned scan/query state "
            "per connection and serves shards to TCP-transport masters "
            "(trusted networks only — the protocol is pickle-based)"
        ),
    )
    worker_parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help=(
            "bind address (default 127.0.0.1:0 = loopback, ephemeral "
            "port printed at startup)"
        ),
    )

    args = parser.parse_args(argv)
    if args.command == "figure1":
        print(harness.reproduce_figure1())
    elif args.command == "figure2":
        print(harness.reproduce_figure2())
    elif args.command == "table1":
        _comparisons, text = harness.reproduce_table1()
        print(text)
    elif args.command == "table2":
        _fit, text = harness.reproduce_table2()
        print(text)
    elif args.command == "solvers":
        _fits, text = harness.reproduce_solver_comparison()
        print(text)
    elif args.command == "appendixb":
        _rows, text = harness.reproduce_appendix_b()
        print(text)
    elif args.command == "discover":
        if args.name and not args.store:
            print("error: --name requires --store", file=sys.stderr)
            return 2
        table = _load_table(args.csv)
        config = DiscoveryConfig(
            max_order=args.max_order,
            max_workers=args.workers,
            worker_addresses=args.workers_remote,
        )
        if args.save or args.store:
            kb = ProbabilisticKnowledgeBase.from_data(table, config)
            result = kb.discovery
            print(result.summary())
            if args.save:
                kb.save(args.save)
                print(f"knowledge base saved to {args.save}")
            if args.store:
                from repro.store import KBStore

                name = args.name or _default_store_name(args.csv)
                with KBStore(args.store) as store:
                    sha = store.save(name, kb)
                print(
                    f"stored as {name!r} in {args.store} "
                    f"({len(kb.revisions)} update revisions, "
                    f"artifact {sha[:12]})"
                )
        else:
            result = discover(table, config)
            print(result.summary())
        if args.profile:
            # Diagnostics go to stderr: stdout carries the summary only,
            # so `repro discover --profile | ...` pipelines stay clean.
            print(f"\n{_render_profile(result)}", file=sys.stderr)
    elif args.command == "update":
        return _run_update(args)
    elif args.command == "history":
        return _run_store_command(_run_history, args)
    elif args.command == "diff":
        return _run_store_command(_run_diff, args)
    elif args.command == "runs":
        return _run_store_command(_run_runs, args)
    elif args.command == "rules":
        table = _load_table(args.csv)
        kb = ProbabilisticKnowledgeBase.from_data(table)
        rules = kb.rules(
            min_probability=args.min_probability,
            min_support=args.min_support,
        ).sorted_by_lift()
        print(rules.describe())
    elif args.command == "recovery":
        _rows, text = harness.selector_recovery_experiment(
            seed=args.seed, trials=args.trials
        )
        print(text)
    elif args.command == "loglinear":
        from repro.baselines.loglinear import LogLinearConfig, discover_loglinear

        table = _load_table(args.csv)
        result = discover_loglinear(table, LogLinearConfig(alpha=args.alpha))
        print(
            f"log-linear forward selection over N={table.total} samples "
            f"(alpha={args.alpha})"
        )
        for step in result.steps:
            print(
                f"  adopted margin over {step.attributes}: "
                f"G2={step.g2:.1f}, dof={step.dof}, p={step.p_value:.2e}"
            )
        print(
            f"interaction parameters spent: "
            f"{result.num_interaction_parameters()}"
        )
    elif args.command == "report":
        from repro.eval.report import generate_report, write_report

        if args.output:
            path = write_report(args.output)
            print(f"report written to {path}")
        else:
            print(generate_report())
    elif args.command == "query":
        return _run_query(args)
    elif args.command == "scenarios":
        return _run_scenarios(args)
    elif args.command == "scorecard":
        return _run_scorecard(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "worker":
        return _run_worker(args)
    return 0


def _run_worker(args) -> int:
    from repro.distributed.worker import serve as serve_worker
    from repro.exceptions import ReproError

    try:
        serve_worker(args.listen)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _run_serve(args) -> int:
    import json

    from repro.exceptions import ReproError

    try:
        return _run_serve_inner(args)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_serve_inner(args) -> int:
    import asyncio

    from repro.serve import ReproServer, ServeConfig

    kbs: dict[str, ProbabilisticKnowledgeBase] = {}
    for spec in args.kb or []:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            print(
                f"error: --kb expects NAME=PATH, got {spec!r}",
                file=sys.stderr,
            )
            return 2
        kbs[name] = ProbabilisticKnowledgeBase.load(path)
    if args.csv:
        kbs["data"] = ProbabilisticKnowledgeBase.from_data(
            read_dataset_csv(args.csv).to_contingency()
        )
    store = None
    if args.store:
        from repro.store import KBStore

        store = KBStore(args.store)
    # With a store, "nothing to host" means "host what is stored" —
    # only a storeless server defaults to the paper's knowledge base.
    if not kbs and (store is None or not store.names()):
        kbs["paper"] = ProbabilisticKnowledgeBase.from_data(paper_table())

    config = ServeConfig(
        flush_interval=args.flush_ms / 1000.0,
        max_batch=args.max_batch,
        pool_size=args.pool_size,
        backend=args.backend,
        session_workers=args.workers,
        worker_addresses=args.workers_remote,
    )
    server = ReproServer(
        host=args.host, port=args.port, config=config, store=store
    )
    for name, kb in kbs.items():
        server.add(name, kb)
    if store is not None:
        server.registry.add_all_from_store()

    async def run() -> None:
        await server.start()
        print(
            f"serving {sorted(server.registry.names())} on "
            f"http://{server.host}:{server.port} (Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _run_update(args) -> int:
    import json

    from repro.exceptions import ReproError

    try:
        return _run_update_inner(args)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_update_inner(args) -> int:
    if bool(args.kb) == bool(args.store):
        print(
            "error: pass exactly one of --kb FILE or --store PATH",
            file=sys.stderr,
        )
        return 2
    store = None
    if args.store:
        from repro.store import KBStore

        store = KBStore(args.store)
        name = args.name or _only_stored_name(store)
        kb = store.load(name)
        source = f"{name!r} in {args.store}"
    else:
        kb = ProbabilisticKnowledgeBase.load(args.kb)
        source = args.kb
    if not kb.can_update:
        print(
            f"error: {source} has no discovery audit trail (saved by an "
            f"older version?); refit with 'repro discover --save' first",
            file=sys.stderr,
        )
        return 2
    # Read the delta against the knowledge base's own schema so label
    # mismatches fail loudly instead of being re-inferred differently.
    delta = read_dataset_csv(args.csv, schema=kb.schema)
    revision = kb.update(delta)
    print(
        f"revision {revision.number} ({revision.mode}): absorbed "
        f"{revision.added_samples} samples, N={revision.sample_size}"
    )
    for names, values in revision.constraints_added:
        labels = ", ".join(
            f"{n}={kb.schema.attribute(n).value_at(v)}"
            for n, v in zip(names, values)
        )
        print(f"  + constraint P({labels})")
    for names, values in revision.constraints_dropped:
        labels = ", ".join(
            f"{n}={kb.schema.attribute(n).value_at(v)}"
            for n, v in zip(names, values)
        )
        print(f"  - constraint P({labels})")
    if store is not None:
        sha = store.save(name, kb)
        store.close()
        print(
            f"revision {revision.number} persisted to {source} "
            f"(artifact {sha[:12]})"
        )
        if args.save:
            kb.save(args.save)
            print(f"updated knowledge base also saved to {args.save}")
        return 0
    destination = args.save or args.kb
    kb.save(destination)
    print(f"updated knowledge base saved to {destination}")
    return 0


def _only_stored_name(store) -> str:
    """--store without --name: unambiguous only for a single-KB store."""
    from repro.exceptions import DataError

    names = store.names()
    if len(names) != 1:
        raise DataError(
            f"--name is required: the store holds {len(names)} knowledge "
            f"bases ({names})"
        )
    return names[0]


def _default_store_name(csv_path: str | None) -> str:
    from pathlib import Path

    return Path(csv_path).stem if csv_path else "paper"


def _run_store_command(inner, args) -> int:
    import json

    from repro.exceptions import ReproError

    try:
        return inner(args)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_history(args) -> int:
    import json

    from repro.eval.tables import format_table
    from repro.store import KBStore

    with KBStore(args.store) as store:
        record = store.describe(args.name)
        rows = store.history(args.name)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "number": row.number,
                        "mode": row.mode,
                        "sample_size": row.sample_size,
                        "added_samples": row.added_samples,
                        "constraints_added": len(row.constraints_added),
                        "constraints_dropped": len(row.constraints_dropped),
                        "artifact": row.artifact_sha,
                        "created_at": row.created_at,
                    }
                    for row in rows
                ],
                indent=2,
            )
        )
        return 0
    print(
        f"{args.name}: {len(rows)} update revisions, latest artifact "
        f"{record.latest_artifact[:12]} (updated {record.updated_at})"
    )
    if rows:
        headers = ["rev", "mode", "N", "added", "+c", "-c", "artifact"]
        print(
            format_table(
                headers,
                [
                    [
                        row.number,
                        row.mode,
                        row.sample_size,
                        row.added_samples,
                        len(row.constraints_added),
                        len(row.constraints_dropped),
                        (
                            row.artifact_sha[:12]
                            if row.artifact_sha
                            else "(not captured)"
                        ),
                    ]
                    for row in rows
                ],
            )
        )
    return 0


def _run_diff(args) -> int:
    from repro.store import KBStore

    with KBStore(args.store) as store:
        diff = store.diff(args.name, args.revision_a, args.revision_b)
    print(diff.describe())
    return 0


def _run_runs(args) -> int:
    import json

    from repro.eval.tables import format_table
    from repro.store import RunRegistry

    with RunRegistry(args.registry) as registry:
        if args.action == "import":
            added = registry.import_trajectory(args.trajectory)
            total = len(registry.runs())
            print(
                f"imported {added} new runs from {args.trajectory} "
                f"({total} total in {args.registry})"
            )
            return 0
        if args.action == "show":
            record = registry.get(args.run_id)
            print(
                json.dumps(
                    {
                        "run_id": record.run_id,
                        "kind": record.kind,
                        "created_at": record.created_at,
                        "smoke": record.smoke,
                        "cpus": record.cpus,
                        "config_hash": record.config_hash,
                        "git_sha": record.git_sha,
                        "metrics": record.metrics,
                    },
                    indent=2,
                )
            )
            return 0
        smoke = True if args.smoke else (False if args.full else None)
        records = registry.runs(kind=args.kind, smoke=smoke)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "run_id": record.run_id,
                        "kind": record.kind,
                        "created_at": record.created_at,
                        "smoke": record.smoke,
                        "cpus": record.cpus,
                        "config_hash": record.config_hash,
                        "git_sha": record.git_sha,
                    }
                    for record in records
                ],
                indent=2,
            )
        )
        return 0
    headers = ["run_id", "kind", "created_at", "smoke", "cpus", "git"]
    print(
        format_table(
            headers,
            [
                [
                    record.run_id,
                    record.kind,
                    record.created_at,
                    "yes" if record.smoke else "no",
                    record.cpus,
                    record.git_sha[:10] if record.git_sha else "-",
                ]
                for record in records
            ],
        )
    )
    print(f"{len(records)} runs")
    return 0


def _run_query(args) -> int:
    import json

    from repro.exceptions import ReproError

    try:
        return _run_query_inner(args)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_query_inner(args) -> int:
    from pathlib import Path

    from repro.api.backends import AUTO, available_backends
    from repro.core.query import parse_assignment

    # Validate the backend name up front: a typo should not cost a full
    # model fit (or KB load) before being reported.
    if args.backend != AUTO and args.backend not in available_backends():
        print(
            f"error: unknown inference backend {args.backend!r}; available: "
            f"{list(available_backends())} (or {AUTO!r})",
            file=sys.stderr,
        )
        return 2
    if args.mpe and (args.expressions or args.batch):
        print(
            "error: --mpe finds the single most probable assignment; it "
            "cannot be combined with query expressions or --batch",
            file=sys.stderr,
        )
        return 2
    if args.given and not args.mpe:
        print(
            "error: --given only applies to --mpe; put evidence after the "
            'bar in the query itself, e.g. "CANCER=yes | SMOKING=smoker"',
            file=sys.stderr,
        )
        return 2
    if args.kb:
        kb = ProbabilisticKnowledgeBase.load(args.kb)
    else:
        kb = ProbabilisticKnowledgeBase.from_data(_load_table(args.csv))
    session = kb.session(
        backend=args.backend,
        max_workers=args.workers,
        worker_addresses=args.workers_remote,
    )
    if args.mpe:
        given = (
            parse_assignment(kb.schema, args.given) if args.given else None
        )
        labels, probability = session.most_probable(given)
        print(f"most probable explanation (backend: {session.backend.name}):")
        for name in kb.schema.names:
            print(f"  {name} = {labels[name]}")
        print(f"  P = {probability:.6f}")
        return 0
    texts = list(args.expressions)
    if args.batch:
        lines = Path(args.batch).read_text().splitlines()
        texts.extend(line.strip() for line in lines if line.strip())
    if not texts:
        print("no queries given; pass expressions, --batch FILE, or --mpe")
        return 2
    try:
        values = session.batch(texts)
    finally:
        session.close()
    for text, value in zip(texts, values):
        print(f"{session.compile(text).description} = {value:.6f}")
    return 0


def _run_scenarios(args) -> int:
    from repro.exceptions import ReproError

    try:
        return _run_scenarios_inner(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_scorecard(args) -> int:
    from repro.exceptions import ReproError

    try:
        return _run_scorecard_inner(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_scorecard_inner(args) -> int:
    import json
    from pathlib import Path

    from repro.eval.scorecard import (
        build_scorecard,
        render_scorecard_markdown,
        scenario_entries_from_registry,
    )
    from repro.store import RunRegistry

    smoke = None
    if args.smoke and not args.full:
        smoke = True
    elif args.full and not args.smoke:
        smoke = False
    with RunRegistry(args.registry) as registry:
        entries = scenario_entries_from_registry(registry, smoke=smoke)
    scorecard = build_scorecard(entries)
    markdown = render_scorecard_markdown(scorecard)
    if args.output:
        Path(args.output).write_text(markdown + "\n")
        print(f"scorecard written to {args.output}", file=sys.stderr)
    else:
        print(markdown)
    if args.json:
        Path(args.json).write_text(json.dumps(scorecard, indent=2) + "\n")
        print(f"scorecard JSON written to {args.json}", file=sys.stderr)
    if args.check and (scorecard["failing"] or scorecard["regressed"]):
        for name in scorecard["failing"]:
            print(f"scorecard: {name} is failing", file=sys.stderr)
        for name in scorecard["regressed"]:
            print(f"scorecard: {name} regressed", file=sys.stderr)
        return 1
    return 0


def _run_scenarios_inner(args) -> int:
    import json
    import os

    from repro.eval.conformance import conformance_report
    from repro.eval.tables import format_table
    from repro.scenarios import (
        all_scenarios,
        outcome_to_dict,
        run_matrix,
    )

    if args.action == "list":
        tiers = args.tier if args.tier else None
        if args.markdown:
            from repro.scenarios.catalog import scenario_catalog_markdown

            print(scenario_catalog_markdown(tiers))
            return 0
        headers = [
            "name",
            "tier",
            "order",
            "attrs",
            "smoke N",
            "full N",
            "tags",
            "description",
        ]
        rows = [
            [
                scenario.name,
                scenario.tier,
                scenario.max_order,
                scenario.attributes,
                scenario.smoke_samples,
                scenario.full_samples,
                ",".join(scenario.tags),
                scenario.description,
            ]
            for scenario in all_scenarios(tiers)
        ]
        print(format_table(headers, rows))
        return 0

    smoke = args.smoke or os.environ.get("REPRO_BENCH_SMOKE") == "1"
    if args.full:
        smoke = False
    outcomes = run_matrix(
        names=args.scenario,
        smoke=smoke,
        include_baselines=not args.no_baselines,
        workers=args.workers,
        tiers=args.tier if args.tier else None,
    )
    if args.registry:
        from repro.scenarios import record_outcomes
        from repro.store import RunRegistry

        with RunRegistry(args.registry) as registry:
            records = record_outcomes(registry, outcomes)
        print(
            f"recorded {len(records)} scenario runs in {args.registry}: "
            + ", ".join(record.run_id for record in records),
            file=sys.stderr,
        )
    if args.json is not None:
        payload = json.dumps(
            [outcome_to_dict(outcome) for outcome in outcomes], indent=2
        )
        # Machine-parseable contract: with --json, stdout carries JSON
        # and nothing else; the human-readable report goes to stderr.
        print(conformance_report(outcomes), file=sys.stderr)
        if args.json == "-":
            print(payload)
        else:
            from pathlib import Path

            Path(args.json).write_text(payload + "\n")
            print(f"scenario metrics written to {args.json}", file=sys.stderr)
    else:
        print(conformance_report(outcomes))
    failed = [outcome for outcome in outcomes if not outcome.passed]
    if failed:
        for outcome in failed:
            for failure in outcome.gate_failures:
                print(
                    f"conformance gate miss: {outcome.scenario}: {failure}",
                    file=sys.stderr,
                )
            for failure in outcome.slo_failures:
                print(
                    f"latency SLO miss: {outcome.scenario}: {failure}",
                    file=sys.stderr,
                )
        return 1
    return 0


def _load_table(csv_path: str | None):
    if csv_path is None:
        return paper_table()
    return read_dataset_csv(csv_path).to_contingency()


def _render_profile(result) -> str:
    """Per-stage timing table from the discovery kernels' instrumentation."""
    from repro.eval.tables import format_table

    profile = result.profile
    if profile is None:
        return "no profile recorded (result was loaded, not fitted)"
    table = format_table(
        ["stage", "calls", "work", "seconds", "share"], profile.rows()
    )
    text = (
        f"discovery stage timings (total {profile.total_seconds:.4f}s)\n"
        + table
    )
    if profile.transports:
        rows = [
            [
                str(entry["order"]),
                entry["transport"],
                _format_bytes(entry.get("bytes_shared", 0)),
                _format_bytes(entry.get("bytes_pickled", 0)),
                _format_bytes(entry.get("bytes_wire", 0)),
                str(entry.get("round_trips", 0)),
                f"{entry.get('broadcasts_skipped', 0)}"
                f"/{entry.get('broadcasts_total', 0)}",
                f"{entry.get('attach_ns', 0) / 1e6:.2f}",
            ]
            for entry in profile.transports
        ]
        transport_table = format_table(
            ["order", "transport", "shared", "pickled", "wire",
             "round trips", "bcasts skipped", "attach ms"],
            rows,
        )
        wire_total = sum(
            entry.get("bytes_wire", 0) for entry in profile.transports
        )
        text += (
            f"\n\nsharded-scan transport (total "
            f"{_format_bytes(profile.bytes_shared)} shared, "
            f"{_format_bytes(profile.bytes_pickled)} pickled, "
            f"{_format_bytes(wire_total)} on the wire, "
            f"{profile.broadcasts_skipped}/{profile.broadcasts_total} "
            f"broadcasts amortized)\n" + transport_table
        )
    return text


def _format_bytes(count: int) -> str:
    if count >= 1 << 20:
        return f"{count / (1 << 20):.1f} MiB"
    if count >= 1 << 10:
        return f"{count / (1 << 10):.1f} KiB"
    return f"{count} B"


if __name__ == "__main__":
    sys.exit(main())
