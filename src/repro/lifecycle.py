"""Live knowledge bases: data stream in, revisions come out.

The paper's sources — surveys, telemetry downlinks — never stop arriving,
and serving traffic cannot stop either.  A :class:`LiveKnowledgeBase` owns
the whole loop:

- a :class:`~repro.data.streaming.TableBuilder` accumulates pending
  observations without keeping raw samples;
- an :class:`UpdatePolicy` decides *when* to refit — after every N pending
  samples, or when a significance probe sees evidence of new structure in
  the pending data (IC3-style: strengthen the model when the data demand
  it, not on a timer);
- updates run through :meth:`ProbabilisticKnowledgeBase.update`'s
  warm-start path, the refined factors land in the same model object, and
  every open :class:`~repro.api.session.QuerySession` picks them up via
  the model fingerprint — no session rebuild, no cold caches beyond the
  entries the update genuinely invalidated;
- every refit appends a :class:`~repro.core.knowledge_base.Revision` to
  the history — and, when a :class:`~repro.store.KBStore` is bound via
  :meth:`LiveKnowledgeBase.bind_store`, persists the new revision (with
  its content-addressed model artifact) durably before returning, so a
  crashed process resumes at the last persisted revision.

Quickstart::

    live = LiveKnowledgeBase.from_data(first_window,
                                       policy=UpdatePolicy(every_n=5000))
    session = live.session()
    for frame in downlink:
        live.observe(frame)            # refits automatically per policy
    session.ask("ANOMALY=detected | VIBRATION=high")   # always current
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.knowledge_base import ProbabilisticKnowledgeBase, Revision
from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.streaming import TableBuilder
from repro.discovery.config import DiscoveryConfig
from repro.estimators.discovery import scan_for_new_significance
from repro.exceptions import DataError


@dataclass(frozen=True)
class UpdatePolicy:
    """When a live knowledge base refits.

    Attributes
    ----------
    every_n:
        Refit once this many pending samples have accumulated; ``None``
        disables the count trigger.  With *both* triggers off
        (``every_n=None, significance_triggered=False``) the live
        knowledge base is in manual mode: observations accumulate until
        an explicit :meth:`LiveKnowledgeBase.flush`.
    significance_triggered:
        Probe the pending data for newly significant cells and refit when
        the probe fires.  The probe runs every ``check_every`` pending
        samples (it costs one scan per order, so it should not run per
        observation).  ``every_n`` stays active alongside the probe as a
        count-based backstop — set ``every_n=None`` for probe-only
        refits.
    check_every:
        Pending-sample interval between significance probes.
    """

    every_n: int | None = 1000
    significance_triggered: bool = False
    check_every: int = 500

    def __post_init__(self) -> None:
        if self.every_n is not None and self.every_n < 1:
            raise DataError(
                f"every_n must be >= 1 (or None), got {self.every_n}"
            )
        if self.check_every < 1:
            raise DataError(
                f"check_every must be >= 1, got {self.check_every}"
            )


class LiveKnowledgeBase:
    """A knowledge base that owns its data stream and refit policy."""

    def __init__(
        self,
        kb: ProbabilisticKnowledgeBase,
        policy: UpdatePolicy | None = None,
    ):
        if not kb.can_update:
            raise DataError(
                "LiveKnowledgeBase needs an updatable knowledge base (built "
                "with from_data, or loaded from a format-3 file with its "
                "audit trail)"
            )
        self.kb = kb
        self.policy = policy or UpdatePolicy()
        self._pending = TableBuilder(kb.schema)
        self._since_probe = 0
        self._store = None
        self._store_name: str | None = None

    @classmethod
    def from_data(
        cls,
        data: ContingencyTable | Dataset,
        config: DiscoveryConfig | None = None,
        policy: UpdatePolicy | None = None,
    ) -> "LiveKnowledgeBase":
        """Fit the first window and start the live loop."""
        return cls(
            ProbabilisticKnowledgeBase.from_data(data, config), policy=policy
        )

    @classmethod
    def from_store(
        cls,
        store,
        name: str,
        policy: UpdatePolicy | None = None,
    ) -> "LiveKnowledgeBase":
        """Resume a live loop from a stored knowledge base's latest revision.

        The store stays bound: every subsequent refit persists its
        revision through ``store.save(name, ...)``.
        """
        live = cls(store.load(name), policy=policy)
        live.bind_store(store, name, save_now=False)
        return live

    # -- persistence --------------------------------------------------------------

    def bind_store(self, store, name: str, save_now: bool = True) -> None:
        """Persist every future refit to ``store`` under ``name``.

        With ``save_now`` (the default) the current state is persisted
        immediately, so the store holds revision history from this
        moment even if no refit ever triggers.
        """
        self._store = store
        self._store_name = name
        if save_now:
            self._persist()

    def _persist(self) -> None:
        if self._store is not None:
            self._store.save(self._store_name, self.kb)

    # -- state --------------------------------------------------------------------

    @property
    def schema(self):
        """The served knowledge base's attribute schema."""
        return self.kb.schema

    @property
    def pending(self) -> int:
        """Observations accumulated since the last refit."""
        return self._pending.total

    @property
    def sample_size(self) -> int:
        """Samples behind the currently served model (excludes pending)."""
        return self.kb.sample_size

    @property
    def history(self) -> tuple[Revision, ...]:
        """Every revision, oldest first (revision 0 is the initial fit)."""
        return tuple(self.kb.revisions)

    # -- observing ----------------------------------------------------------------

    @staticmethod
    def _tally(builder: TableBuilder, observation) -> None:
        if isinstance(observation, Mapping):
            builder.add_record(observation)
        elif isinstance(observation, Sequence) and not isinstance(
            observation, str
        ):
            builder.add_sample(observation)
        else:
            raise DataError(
                f"observe expects a record dict or a sample sequence, got "
                f"{type(observation).__name__}"
            )

    def observe(self, observation) -> Revision | None:
        """Tally one observation (a record dict or a schema-order sample).

        Returns the new :class:`Revision` if the policy triggered a refit,
        else None.
        """
        self._tally(self._pending, observation)
        return self._maybe_update()

    def observe_batch(self, samples: Iterable) -> Revision | None:
        """Tally a batch of observations (records or samples).

        The batch is staged and validated as a whole before any of it
        lands in the pending accumulator, so a bad item partway through
        cannot leave earlier items half-counted.
        """
        staged = TableBuilder(self.schema)
        for observation in samples:
            self._tally(staged, observation)
        if staged.total == 0:
            return None
        self._pending.merge(staged)
        return self._maybe_update()

    def add_table(self, table: ContingencyTable) -> Revision | None:
        """Merge a pre-tallied table (e.g. a shard's accumulator)."""
        self._pending.add_table(table)
        return self._maybe_update()

    def flush(self) -> Revision | None:
        """Force a refit of everything pending; None if nothing pending.

        With a bound store the new revision is persisted before this
        returns — the durable history never lags the served model by
        more than the still-pending window.
        """
        if self._pending.total == 0:
            return None
        revision = self.kb.ingest(self._pending)
        self._since_probe = 0
        self._persist()
        return revision

    # -- policy -------------------------------------------------------------------

    def _maybe_update(self) -> Revision | None:
        policy = self.policy
        pending = self._pending.total
        if (
            policy.significance_triggered
            and pending - self._since_probe >= policy.check_every
        ):
            self._since_probe = pending
            merged = self.kb.discovery.table + self._pending.snapshot()
            if scan_for_new_significance(
                merged, self.kb.discovery, self.kb.discovery.config
            ):
                return self.flush()
        if policy.every_n is not None and pending >= policy.every_n:
            return self.flush()
        return None

    # -- serving ------------------------------------------------------------------

    def session(
        self,
        backend: str = "auto",
        cache_size: int | None = None,
        max_workers: int = 1,
    ):
        """Open a query session; it stays valid across refits.

        ``max_workers > 1`` serves batches from worker processes; their
        sessions track refits through the model fingerprint just like
        in-process ones, so a policy-triggered refit is picked up on the
        next batch.
        """
        return self.kb.session(
            backend=backend, cache_size=cache_size, max_workers=max_workers
        )

    def query(self, text: str) -> float:
        """Answer a textual probability query against the current model."""
        return self.kb.query(text)

    def probability(self, target, given=None) -> float:
        """``P(target | given)`` against the current model."""
        return self.kb.probability(target, given)

    def __repr__(self) -> str:
        return (
            f"LiveKnowledgeBase(N={self.kb.sample_size}, "
            f"pending={self.pending}, revisions={len(self.kb.revisions)})"
        )
