"""repro: Automatic Probabilistic Knowledge Acquisition from Data.

A full reproduction of Gevarter (NASA TM-88224, 1986): maximum-entropy
estimation of joint attribute probabilities from contingency tables, with
minimum-message-length discovery of the statistically significant
correlations, probability queries, and IF-THEN rule generation for
probabilistic expert systems.

Quickstart::

    from repro import ProbabilisticKnowledgeBase, paper_table

    kb = ProbabilisticKnowledgeBase.from_data(paper_table())
    kb.query("CANCER=yes | SMOKING=smoker")
    kb.rules(min_probability=0.5).describe()
"""

from repro.core.inference import RuleEngine
from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.query import Query, QueryEngine
from repro.core.rules import Rule, RuleGenerator, RuleSet
from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine, discover
from repro.eval.paper import paper_schema, paper_table
from repro.exceptions import (
    ConstraintError,
    ConvergenceError,
    DataError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.maxent.constraints import CellConstraint, ConstraintSet
from repro.maxent.dual import fit_dual
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel
from repro.significance.mml import MMLPriors, evaluate_cell, scan_order

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "CellConstraint",
    "ConstraintError",
    "ConstraintSet",
    "ContingencyTable",
    "ConvergenceError",
    "DataError",
    "Dataset",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "MMLPriors",
    "MaxEntModel",
    "ProbabilisticKnowledgeBase",
    "Query",
    "QueryEngine",
    "QueryError",
    "ReproError",
    "Rule",
    "RuleEngine",
    "RuleGenerator",
    "RuleSet",
    "Schema",
    "SchemaError",
    "discover",
    "evaluate_cell",
    "fit_dual",
    "fit_gevarter",
    "fit_ipf",
    "paper_schema",
    "paper_table",
    "scan_order",
]
