"""repro: Automatic Probabilistic Knowledge Acquisition from Data.

A full reproduction of Gevarter (NASA TM-88224, 1986): maximum-entropy
estimation of joint attribute probabilities from contingency tables, with
minimum-message-length discovery of the statistically significant
correlations, probability queries, and IF-THEN rule generation for
probabilistic expert systems.

Quickstart::

    from repro import ProbabilisticKnowledgeBase, paper_table

    kb = ProbabilisticKnowledgeBase.from_data(paper_table())
    kb.query("CANCER=yes | SMOKING=smoker")
    kb.p("CANCER=yes").given("SMOKING=smoker").value()   # fluent form
    kb.rules(min_probability=0.5).describe()

Serving many queries?  Open a session: queries compile once into plans,
marginals are memoized, and batches share the underlying joint/marginal
computations across an explicitly chosen (or auto-selected) inference
backend::

    session = kb.session(backend="auto")      # dense | elimination | plugin
    session.batch(["CANCER=yes", "CANCER=yes | SMOKING=smoker"])
    session.most_probable({"SMOKING": "smoker"})

Data keeps arriving?  Update in place — discovery reruns warm-started from
the current constraints and ``a`` values, and open sessions pick up the
refreshed model through its fingerprint::

    kb.update(next_batch)                     # Revision(mode='warm', ...)
    live = LiveKnowledgeBase.from_data(first_window,
                                       policy=UpdatePolicy(every_n=5000))
"""

from repro.api.backends import (
    DenseBackend,
    EliminationBackend,
    InferenceBackend,
    available_backends,
    register_backend,
)
from repro.api.plan import QueryPlan, compile_query
from repro.api.session import QuerySession
from repro.core.inference import RuleEngine
from repro.core.knowledge_base import ProbabilisticKnowledgeBase, Revision
from repro.core.query import Query, QueryEngine
from repro.core.rules import Rule, RuleGenerator, RuleSet
from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.data.streaming import TableBuilder
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine, discover, rediscover
from repro.estimators import (
    DiscoveryEstimator,
    Estimator,
    UpdateReport,
    available_estimators,
    create_estimator,
    register_estimator,
)
from repro.eval.paper import paper_schema, paper_table
from repro.exceptions import (
    ConstraintError,
    ConvergenceError,
    DataError,
    QueryError,
    ReproError,
    SchemaError,
    StaleConstraintError,
)
from repro.lifecycle import LiveKnowledgeBase, UpdatePolicy
from repro.maxent.constraints import CellConstraint, ConstraintSet
from repro.maxent.dual import fit_dual
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import fit_ipf, warm_start_model
from repro.maxent.model import MaxEntModel
from repro.scenarios import (
    ConformanceGates,
    Scenario,
    ScenarioOutcome,
    run_matrix,
    run_scenario,
    scenario_names,
)
from repro.significance.kernels import DiscoveryProfile, OrderScanKernel
from repro.store import KBDiff, KBStore, RunRegistry
from repro.significance.mml import (
    MMLPriors,
    evaluate_cell,
    reference_scan_order,
    scan_order,
)

__version__ = "1.2.0"

__all__ = [
    "Attribute",
    "CellConstraint",
    "ConformanceGates",
    "ConstraintError",
    "ConstraintSet",
    "ContingencyTable",
    "ConvergenceError",
    "DataError",
    "Dataset",
    "DenseBackend",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryEstimator",
    "DiscoveryProfile",
    "EliminationBackend",
    "Estimator",
    "InferenceBackend",
    "KBDiff",
    "KBStore",
    "LiveKnowledgeBase",
    "MMLPriors",
    "MaxEntModel",
    "OrderScanKernel",
    "ProbabilisticKnowledgeBase",
    "Query",
    "QueryEngine",
    "QueryError",
    "QueryPlan",
    "QuerySession",
    "ReproError",
    "Revision",
    "Rule",
    "RuleEngine",
    "RuleGenerator",
    "RuleSet",
    "RunRegistry",
    "Scenario",
    "ScenarioOutcome",
    "Schema",
    "SchemaError",
    "StaleConstraintError",
    "TableBuilder",
    "UpdatePolicy",
    "UpdateReport",
    "available_backends",
    "available_estimators",
    "compile_query",
    "create_estimator",
    "discover",
    "evaluate_cell",
    "fit_dual",
    "fit_gevarter",
    "fit_ipf",
    "paper_schema",
    "paper_table",
    "rediscover",
    "reference_scan_order",
    "register_backend",
    "register_estimator",
    "run_matrix",
    "run_scenario",
    "scan_order",
    "scenario_names",
    "warm_start_model",
]
