"""Data substrate: schemas, datasets, contingency tables, conversion, I/O."""

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.discretize import Discretizer
from repro.data.missing import IncompleteDataset, complete_table, em_joint
from repro.data.schema import Attribute, Schema
from repro.data.streaming import TableBuilder

__all__ = [
    "Attribute",
    "ContingencyTable",
    "Dataset",
    "Discretizer",
    "IncompleteDataset",
    "Schema",
    "TableBuilder",
    "complete_table",
    "em_joint",
]
