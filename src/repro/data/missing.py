"""Missing data: EM completion of partially observed samples.

Real questionnaires come back with blanks; the paper's pipeline needs a
complete contingency table.  This module implements the standard EM
treatment for categorical data:

- **E-step**: each partially observed sample distributes its unit of count
  over the joint cells consistent with its observed values, proportionally
  to the current joint estimate;
- **M-step**: the joint estimate becomes the expected counts divided by N.

Iterating to convergence yields the maximum-likelihood joint under
missing-at-random, whose expected counts are then rounded to integers
(largest-remainder, preserving N exactly) so the discovery pipeline can
consume them.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.schema import Schema
from repro.exceptions import ConvergenceError, DataError

#: Internal sentinel for an unobserved field.
MISSING = -1

#: Input tokens accepted as "missing" in raw samples.
MISSING_TOKENS = (None, "", "?", "NA", "na")


class IncompleteDataset:
    """Samples over a schema where some fields may be unobserved."""

    def __init__(self, schema: Schema, rows: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != len(schema):
            raise DataError(
                f"rows must be a (N, {len(schema)}) array, got {rows.shape}"
            )
        for axis, attribute in enumerate(schema):
            column = rows[:, axis]
            bad = (column != MISSING) & (
                (column < 0) | (column >= attribute.cardinality)
            )
            if bad.any():
                raise DataError(
                    f"column for {attribute.name!r} has out-of-range values"
                )
        self.schema = schema
        self.rows = rows
        self.rows.setflags(write=False)

    @classmethod
    def from_samples(
        cls, schema: Schema, samples: Iterable[Sequence]
    ) -> "IncompleteDataset":
        """Build from samples where missing fields are None / "" / "?"."""
        converted = []
        for number, sample in enumerate(samples):
            if len(sample) != len(schema):
                raise DataError(
                    f"sample {number} has {len(sample)} fields, schema has "
                    f"{len(schema)}"
                )
            row = []
            for attribute, value in zip(schema, sample):
                if value in MISSING_TOKENS:
                    row.append(MISSING)
                else:
                    row.append(attribute.index_of(value))
            converted.append(row)
        rows = (
            np.array(converted, dtype=np.int64)
            if converted
            else np.empty((0, len(schema)), dtype=np.int64)
        )
        return cls(schema, rows)

    def __len__(self) -> int:
        return self.rows.shape[0]

    @property
    def missing_fraction(self) -> float:
        """Fraction of all fields that are unobserved."""
        if self.rows.size == 0:
            return 0.0
        return float((self.rows == MISSING).mean())

    def complete_rows(self) -> np.ndarray:
        """The subset of rows with no missing fields."""
        return self.rows[(self.rows != MISSING).all(axis=1)]

    def patterns(self) -> Counter:
        """Distinct observation rows with multiplicities (EM groups by
        pattern so cost scales with distinct patterns, not N)."""
        return Counter(tuple(int(v) for v in row) for row in self.rows)


@dataclass
class EMResult:
    """Outcome of an EM run."""

    joint: np.ndarray
    expected_counts: np.ndarray
    iterations: int
    converged: bool
    log_likelihood: list[float] = field(default_factory=list)


def em_joint(
    data: IncompleteDataset,
    max_iterations: int = 200,
    tol: float = 1e-8,
    initial: np.ndarray | None = None,
    require_convergence: bool = True,
) -> EMResult:
    """Maximum-likelihood joint under missing-at-random, via EM.

    ``tol`` bounds the per-iteration log-likelihood improvement at
    convergence.  The log-likelihood is guaranteed non-decreasing (a test
    invariant).
    """
    if len(data) == 0:
        raise DataError("cannot run EM on an empty dataset")
    schema = data.schema
    n = len(data)
    if initial is not None:
        joint = np.asarray(initial, dtype=float)
        if joint.shape != schema.shape:
            raise DataError(
                f"initial joint shape {joint.shape} != {schema.shape}"
            )
        joint = np.clip(joint, 1e-12, None)
        joint = joint / joint.sum()
    else:
        joint = np.full(schema.shape, 1.0 / schema.num_cells)

    patterns = data.patterns()
    slicers = {}
    for pattern in patterns:
        slicers[pattern] = tuple(
            slice(None) if v == MISSING else v for v in pattern
        )

    history: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        expected = np.zeros(schema.shape)
        log_likelihood = 0.0
        for pattern, count in patterns.items():
            slicer = slicers[pattern]
            block = joint[slicer]
            mass = float(np.sum(block))
            if mass <= 0:
                raise DataError(
                    f"observation pattern {pattern} has zero probability "
                    f"under the current estimate"
                )
            expected[slicer] += (count / mass) * block
            log_likelihood += count * np.log(mass)
        history.append(log_likelihood)
        joint = expected / n
        if len(history) >= 2 and history[-1] - history[-2] < tol:
            converged = True
            break
    if not converged and require_convergence:
        raise ConvergenceError(
            f"EM did not converge in {max_iterations} iterations"
        )
    return EMResult(
        joint=joint,
        expected_counts=joint * n,
        iterations=iterations,
        converged=converged,
        log_likelihood=history,
    )


def round_preserving_total(counts: np.ndarray) -> np.ndarray:
    """Largest-remainder rounding of non-negative counts to integers.

    The result sums to ``round(counts.sum())`` exactly, so EM's expected
    counts become a valid contingency table of the original N.
    """
    counts = np.asarray(counts, dtype=float)
    if (counts < -1e-9).any():
        raise DataError("counts must be non-negative")
    target = int(round(counts.sum()))
    floors = np.floor(counts).astype(np.int64)
    deficit = target - int(floors.sum())
    if deficit > 0:
        remainders = (counts - floors).ravel()
        top_up = np.argsort(-remainders, kind="stable")[:deficit]
        flat = floors.ravel()
        flat[top_up] += 1
        floors = flat.reshape(counts.shape)
    return floors


def complete_table(
    data: IncompleteDataset,
    max_iterations: int = 200,
    tol: float = 1e-8,
) -> tuple[ContingencyTable, EMResult]:
    """EM-complete an incomplete dataset into a contingency table.

    Returns the rounded table (total exactly N) plus the full EM result
    for callers who want the fractional expected counts.
    """
    result = em_joint(data, max_iterations=max_iterations, tol=tol)
    counts = round_preserving_total(result.expected_counts)
    return ContingencyTable(data.schema, counts), result
