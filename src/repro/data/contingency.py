"""Contingency tables: N-dimensional count tensors over a schema.

This is the paper's central data structure (Figures 1 and 2).  A
:class:`ContingencyTable` stores the counts ``N_ijk...`` as a numpy integer
tensor whose axes follow the schema's attribute order.  Marginal counts
(Eqs 1-6) are axis sums; :meth:`ContingencyTable.marginal` returns them for
any attribute subset.

Counts are immutable once constructed, so every marginal count tensor is
computed at most once: :meth:`ContingencyTable.marginal_counts` keeps a
per-subset cache of read-only count arrays, and :meth:`ContingencyTable.count`
answers from it in O(1) after the first lookup of a subset.  This is what
makes the discovery scan kernels array-native — the per-cell dict lookups
of the scalar path all collapse into shared cached tensors.

The text rendering helpers reproduce the paper's visual layout: a 2-D grid
per slice of a third attribute (Figure 1) optionally bordered with marginal
sums (Figure 2).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.schema import Schema
from repro.exceptions import DataError

#: Type alias for a marginal cell: (subset names, value indices, count).
MarginalCell = tuple[tuple[str, ...], tuple[int, ...], int]


class ContingencyTable:
    """Counts of attribute-value combinations observed in N samples.

    Parameters
    ----------
    schema:
        The attribute schema; its order defines the tensor axes.
    counts:
        Non-negative integer array of shape ``schema.shape``.
    """

    def __init__(self, schema: Schema, counts: np.ndarray):
        counts = np.asarray(counts)
        if counts.shape != schema.shape:
            raise DataError(
                f"counts shape {counts.shape} does not match schema shape "
                f"{schema.shape}"
            )
        if np.issubdtype(counts.dtype, np.floating):
            if not np.allclose(counts, np.round(counts)):
                raise DataError("counts must be integers")
            counts = np.round(counts).astype(np.int64)
        else:
            counts = counts.astype(np.int64)
        if (counts < 0).any():
            raise DataError("counts must be non-negative")
        self.schema = schema
        self.counts = counts
        self.counts.setflags(write=False)
        # Counts are frozen above, so these caches never go stale.
        self._marginal_cache: dict[tuple[str, ...], np.ndarray] = {}
        self._total: int | None = None

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_samples(
        cls, schema: Schema, samples: Iterable[Sequence[str | int]]
    ) -> "ContingencyTable":
        """Build a table by tallying raw samples (Appendix A's pipeline).

        Each sample is a sequence of value labels or indices, one per
        attribute, in schema order.
        """
        counts = np.zeros(schema.shape, dtype=np.int64)
        width = len(schema)
        for row_number, sample in enumerate(samples):
            if len(sample) != width:
                raise DataError(
                    f"sample {row_number} has {len(sample)} fields, "
                    f"schema has {width} attributes"
                )
            index = tuple(
                attribute.index_of(value)
                for attribute, value in zip(schema, sample)
            )
            counts[index] += 1
        return cls(schema, counts)

    @classmethod
    def from_records(
        cls, schema: Schema, records: Iterable[Mapping[str, str | int]]
    ) -> "ContingencyTable":
        """Build a table from dict records ``{attribute name: value}``."""
        names = schema.names
        samples = ([record[name] for name in names] for record in records)
        return cls.from_samples(schema, samples)

    @classmethod
    def zeros(cls, schema: Schema) -> "ContingencyTable":
        """An empty table (all cells zero)."""
        return cls(schema, np.zeros(schema.shape, dtype=np.int64))

    # -- basics -------------------------------------------------------------------

    @property
    def total(self) -> int:
        """Total number of individuals N (Eq 6)."""
        if self._total is None:
            self._total = int(self.counts.sum())
        return self._total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContingencyTable):
            return NotImplemented
        return self.schema == other.schema and np.array_equal(
            self.counts, other.counts
        )

    def __repr__(self) -> str:
        return f"ContingencyTable({self.schema!r}, N={self.total})"

    def __add__(self, other: "ContingencyTable") -> "ContingencyTable":
        if not isinstance(other, ContingencyTable):
            return NotImplemented
        if self.schema != other.schema:
            raise DataError("cannot add tables with different schemas")
        return ContingencyTable(self.schema, self.counts + other.counts)

    # -- marginals (Eqs 1-6) ------------------------------------------------------

    def marginal_counts(self, names: Sequence[str]) -> np.ndarray:
        """Cached read-only marginal count tensor over ``names``.

        Axes follow schema order.  The array is computed once per subset
        and frozen; callers that need to mutate should use
        :meth:`marginal`, which returns a fresh copy.  The cache holds at
        most one entry per attribute subset ever queried (bounded by
        ``2^R``), each no larger than the count tensor itself.
        """
        ordered = self.schema.canonical_subset(names)
        cached = self._marginal_cache.get(ordered)
        if cached is None:
            drop = self.schema.drop_axes(ordered)
            cached = self.counts.sum(axis=drop) if drop else self.counts
            cached.setflags(write=False)
            self._marginal_cache[ordered] = cached
        return cached

    def marginal(self, names: Sequence[str]) -> np.ndarray:
        """Marginal count array over ``names`` (axes in schema order).

        ``marginal(["A", "B"])`` returns ``N_ij = sum_k N_ijk`` (Eq 1);
        ``marginal(["A"])`` returns ``N_i`` (Eq 4).  The returned array is
        a mutable copy; use :meth:`marginal_counts` for the shared cached
        tensor.
        """
        return self.marginal_counts(names).copy()

    def marginal_table(self, names: Sequence[str]) -> "ContingencyTable":
        """Marginal as a new :class:`ContingencyTable` over the sub-schema.

        This is the paper's Figure 2c: summing the smoking/cancer data over
        FAMILY HISTORY collapses the two slices into one AB table.
        """
        ordered = self.schema.canonical_subset(names)
        return ContingencyTable(
            self.schema.subschema(ordered), self.marginal(ordered)
        )

    def count(self, assignment: Mapping[str, str | int]) -> int:
        """Count of samples matching a (possibly partial) assignment.

        A full assignment returns one cell ``N_ijk``; a partial one returns
        the corresponding marginal count, e.g. ``count({"A": "smoker"})``
        is ``N_1^A``.
        """
        indices = self.schema.indices_of(assignment)
        names = self.schema.canonical_subset(list(indices))
        sub = self.marginal_counts(names)
        return int(sub[tuple(indices[n] for n in names)])

    # -- probabilities ------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Empirical joint probabilities ``N_ijk / N``."""
        total = self.total
        if total == 0:
            raise DataError("cannot compute probabilities of an empty table")
        return self.counts / total

    def first_order_probabilities(self, name: str) -> np.ndarray:
        """``p_i = N_i / N`` for one attribute (Eq 48)."""
        total = self.total
        if total == 0:
            raise DataError("cannot compute probabilities of an empty table")
        return self.marginal_counts([name]) / total

    def probability(self, assignment: Mapping[str, str | int]) -> float:
        """Empirical probability of a (possibly partial) assignment."""
        return self.count(assignment) / self.total

    # -- cell iteration -----------------------------------------------------------

    def subsets_of_order(self, order: int) -> list[tuple[str, ...]]:
        """All attribute subsets of a given size, in canonical order."""
        from itertools import combinations

        if not 1 <= order <= len(self.schema):
            raise DataError(
                f"order must be in 1..{len(self.schema)}, got {order}"
            )
        return [tuple(c) for c in combinations(self.schema.names, order)]

    def cells_of_order(self, order: int) -> Iterator[MarginalCell]:
        """Iterate every marginal cell at a given order.

        Yields ``(subset names, value indices, count)``.  The paper's "16
        second order cells" for the smoking example are exactly
        ``list(table.cells_of_order(2))``.
        """
        for subset in self.subsets_of_order(order):
            sub = self.marginal_counts(subset)
            for index in np.ndindex(sub.shape):
                yield subset, tuple(int(i) for i in index), int(sub[index])

    def num_cells_of_order(self, order: int) -> int:
        """Number of marginal cells at a given order."""
        total = 0
        for subset in self.subsets_of_order(order):
            size = 1
            for name in subset:
                size *= self.schema.attribute(name).cardinality
            total += size
        return total

    # -- rendering (Figures 1 and 2) ------------------------------------------------

    def render(
        self,
        row: str | None = None,
        col: str | None = None,
        show_marginals: bool = False,
    ) -> str:
        """Render the table as text in the paper's Figure 1/2 layout.

        For a 2-D table (or when only two attributes are named) a single
        grid is produced; with more attributes one grid is printed per
        combination of the remaining attributes' values, mirroring the
        paper's one-slice-per-family-history figures.
        """
        names = list(self.schema.names)
        if row is None or col is None:
            if len(names) < 2:
                raise DataError("render needs at least two attributes")
            row = row or names[0]
            col = col or names[1]
        others = [n for n in names if n not in (row, col)]
        blocks = []
        if not others:
            blocks.append(self._render_slice({}, row, col, show_marginals))
        else:
            other_shapes = [self.schema.attribute(n).cardinality for n in others]
            for combo in np.ndindex(*other_shapes):
                fixed = dict(zip(others, (int(i) for i in combo)))
                header = ", ".join(
                    f"{n} = {self.schema.attribute(n).value_at(i)}"
                    for n, i in fixed.items()
                )
                blocks.append(
                    header + "\n" + self._render_slice(fixed, row, col, show_marginals)
                )
        return "\n\n".join(blocks)

    def _render_slice(
        self,
        fixed: Mapping[str, int],
        row: str,
        col: str,
        show_marginals: bool,
    ) -> str:
        row_attr = self.schema.attribute(row)
        col_attr = self.schema.attribute(col)
        grid = np.empty((row_attr.cardinality, col_attr.cardinality), dtype=np.int64)
        for i in range(row_attr.cardinality):
            for j in range(col_attr.cardinality):
                grid[i, j] = self.count({**fixed, row: i, col: j})
        header = [f"{row}\\{col}"] + list(col_attr.values)
        if show_marginals:
            header.append("N")
        rows = [header]
        for i, label in enumerate(row_attr.values):
            cells = [label] + [str(int(v)) for v in grid[i]]
            if show_marginals:
                cells.append(str(int(grid[i].sum())))
            rows.append(cells)
        if show_marginals:
            footer = ["N"] + [str(int(v)) for v in grid.sum(axis=0)]
            footer.append(str(int(grid.sum())))
            rows.append(footer)
        widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
        lines = [
            "  ".join(cell.rjust(w) for cell, w in zip(r, widths)) for r in rows
        ]
        return "\n".join(lines)
