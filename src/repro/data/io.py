"""Serialization: CSV datasets and JSON round-trips for tables and schemas.

CSV is the interchange format for raw survey data (header row of attribute
names, one row per sample).  JSON carries structured artifacts — schemas,
contingency tables — between runs and into the knowledge-base format.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError


# -- CSV datasets -------------------------------------------------------------------


def write_dataset_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset as CSV with a header of attribute names."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(dataset.schema.names)
        for record in dataset.records():
            writer.writerow([record[name] for name in dataset.schema.names])


def read_dataset_csv(path: str | Path, schema: Schema | None = None) -> Dataset:
    """Read a dataset from CSV.

    If ``schema`` is None, a schema is inferred: each column becomes an
    attribute whose values are the sorted distinct labels observed.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows = [row for row in reader if row]
    for number, row in enumerate(rows):
        if len(row) != len(header):
            raise DataError(
                f"{path}: row {number + 1} has {len(row)} fields, header "
                f"has {len(header)}"
            )
    if schema is None:
        columns = list(zip(*rows)) if rows else [[] for _ in header]
        attributes = []
        for name, column in zip(header, columns):
            labels = sorted(set(column))
            if len(labels) < 2:
                raise DataError(
                    f"{path}: column {name!r} has fewer than 2 distinct "
                    f"values; cannot infer an attribute"
                )
            attributes.append(Attribute(name, tuple(labels)))
        schema = Schema(attributes)
    else:
        if tuple(header) != schema.names:
            raise DataError(
                f"{path}: header {header} does not match schema names "
                f"{list(schema.names)}"
            )
    return Dataset.from_samples(schema, rows)


# -- JSON schemas and tables --------------------------------------------------------


def schema_to_dict(schema: Schema) -> dict:
    """JSON-ready dict for a schema."""
    return {
        "attributes": [
            {"name": a.name, "values": list(a.values)} for a in schema
        ]
    }


def schema_from_dict(data: dict) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    from repro.exceptions import SchemaError

    try:
        attributes = [
            Attribute(item["name"], tuple(item["values"]))
            for item in data["attributes"]
        ]
        return Schema(attributes)
    except (KeyError, TypeError, SchemaError) as error:
        raise DataError(f"malformed schema dict: {error}") from None


def table_to_dict(table: ContingencyTable) -> dict:
    """JSON-ready dict for a contingency table."""
    return {
        "schema": schema_to_dict(table.schema),
        "counts": table.counts.tolist(),
    }


def table_from_dict(data: dict) -> ContingencyTable:
    """Inverse of :func:`table_to_dict`."""
    try:
        schema = schema_from_dict(data["schema"])
        counts = np.array(data["counts"], dtype=np.int64)
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(f"malformed table dict: {error}") from None
    return ContingencyTable(schema, counts)


def write_table_json(table: ContingencyTable, path: str | Path) -> None:
    """Write a contingency table to a JSON file."""
    Path(path).write_text(json.dumps(table_to_dict(table), indent=2))


def read_table_json(path: str | Path) -> ContingencyTable:
    """Read a contingency table from a JSON file."""
    return table_from_dict(json.loads(Path(path).read_text()))
