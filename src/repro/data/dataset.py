"""Raw sample datasets (the paper's "original data form", Figure 5).

A :class:`Dataset` holds N samples over a schema, each a tuple of value
indices.  It is the entry point of the Appendix-A pipeline: raw samples are
tallied into a :class:`~repro.data.contingency.ContingencyTable` which every
downstream stage consumes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.schema import Schema
from repro.exceptions import DataError


class Dataset:
    """An ordered collection of categorical samples over a schema."""

    def __init__(self, schema: Schema, rows: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != len(schema):
            raise DataError(
                f"rows must be a (N, {len(schema)}) array, got shape {rows.shape}"
            )
        for axis, attribute in enumerate(schema):
            column = rows[:, axis]
            if column.size and (
                column.min() < 0 or column.max() >= attribute.cardinality
            ):
                raise DataError(
                    f"column for attribute {attribute.name!r} has out-of-range "
                    f"value indices"
                )
        self.schema = schema
        self.rows = rows
        self.rows.setflags(write=False)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_samples(
        cls, schema: Schema, samples: Iterable[Sequence[str | int]]
    ) -> "Dataset":
        """Build from samples of value labels (or indices) in schema order."""
        converted = []
        width = len(schema)
        for row_number, sample in enumerate(samples):
            if len(sample) != width:
                raise DataError(
                    f"sample {row_number} has {len(sample)} fields, "
                    f"schema has {width} attributes"
                )
            converted.append(
                [attr.index_of(v) for attr, v in zip(schema, sample)]
            )
        rows = (
            np.array(converted, dtype=np.int64)
            if converted
            else np.empty((0, width), dtype=np.int64)
        )
        return cls(schema, rows)

    @classmethod
    def from_records(
        cls, schema: Schema, records: Iterable[Mapping[str, str | int]]
    ) -> "Dataset":
        """Build from dict records ``{attribute name: value}``."""
        names = schema.names
        return cls.from_samples(
            schema, ([record[name] for name in names] for record in records)
        )

    @classmethod
    def from_joint(
        cls,
        schema: Schema,
        joint: np.ndarray,
        n: int,
        rng: np.random.Generator,
    ) -> "Dataset":
        """Draw ``n`` i.i.d. samples from a joint probability tensor.

        This is how synthetic survey populations are turned into observed
        data: the algorithm under study only ever sees the sampled counts.
        """
        joint = np.asarray(joint, dtype=float)
        if joint.shape != schema.shape:
            raise DataError(
                f"joint shape {joint.shape} does not match schema "
                f"shape {schema.shape}"
            )
        flat = joint.ravel()
        if (flat < -1e-12).any():
            raise DataError("joint probabilities must be non-negative")
        flat = np.clip(flat, 0.0, None)
        total = flat.sum()
        if total <= 0:
            raise DataError("joint probabilities must not all be zero")
        flat = flat / total
        draws = rng.choice(flat.size, size=n, p=flat)
        rows = np.column_stack(np.unravel_index(draws, schema.shape))
        return cls(schema, rows.astype(np.int64))

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self.rows.shape[0]

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for row in self.rows:
            yield tuple(int(v) for v in row)

    def __getitem__(self, index: int) -> tuple[int, ...]:
        return tuple(int(v) for v in self.rows[index])

    def __repr__(self) -> str:
        return f"Dataset({self.schema!r}, n={len(self)})"

    # -- views --------------------------------------------------------------------

    def record(self, index: int) -> dict[str, str]:
        """The index-th sample as ``{attribute name: value label}``."""
        return {
            attribute.name: attribute.value_at(int(v))
            for attribute, v in zip(self.schema, self.rows[index])
        }

    def records(self) -> Iterator[dict[str, str]]:
        """Iterate all samples as labelled records."""
        for index in range(len(self)):
            yield self.record(index)

    def to_contingency(self) -> ContingencyTable:
        """Tally the samples into a contingency table (Appendix A)."""
        counts = np.zeros(self.schema.shape, dtype=np.int64)
        np.add.at(counts, tuple(self.rows.T), 1)
        return ContingencyTable(self.schema, counts)

    def split(
        self, fraction: float, rng: np.random.Generator
    ) -> tuple["Dataset", "Dataset"]:
        """Random split into two datasets (e.g. train / holdout)."""
        if not 0.0 < fraction < 1.0:
            raise DataError(f"fraction must be in (0, 1), got {fraction}")
        n = len(self)
        order = rng.permutation(n)
        cut = int(round(n * fraction))
        return (
            Dataset(self.schema, self.rows[order[:cut]]),
            Dataset(self.schema, self.rows[order[cut:]]),
        )
