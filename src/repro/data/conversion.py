"""Appendix A: converting original data to contingency-table form.

The paper's Figure 5 shows "original data form": one row per sample with an
``x`` in the column of each attribute value the sample has (a one-hot
indicator block per attribute).  Figure 6 shows the "R-tuples form": one
column per *joint cell* (ABC triple), again with an ``x`` per sample, whose
column sums are exactly the contingency-table cells of Figure 1.

This module implements both representations and the conversions between
them and :class:`~repro.data.dataset.Dataset` /
:class:`~repro.data.contingency.ContingencyTable`, so the full Appendix-A
pipeline is executable and testable end to end.
"""

from __future__ import annotations

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import DataError


def dataset_to_indicator_matrix(dataset: Dataset) -> np.ndarray:
    """Figure 5: one-hot indicator matrix, one column block per attribute.

    Returns an ``(N, sum of cardinalities)`` 0/1 array.  Column blocks
    follow schema order; within a block, columns follow value order.
    """
    schema = dataset.schema
    width = sum(a.cardinality for a in schema)
    matrix = np.zeros((len(dataset), width), dtype=np.int64)
    offsets = _block_offsets(schema)
    for axis, offset in enumerate(offsets):
        matrix[np.arange(len(dataset)), offset + dataset.rows[:, axis]] = 1
    return matrix


def indicator_matrix_to_dataset(schema: Schema, matrix: np.ndarray) -> Dataset:
    """Inverse of :func:`dataset_to_indicator_matrix`.

    Validates that each sample marks exactly one value per attribute.
    """
    matrix = np.asarray(matrix)
    width = sum(a.cardinality for a in schema)
    if matrix.ndim != 2 or matrix.shape[1] != width:
        raise DataError(
            f"indicator matrix must have {width} columns, got shape "
            f"{matrix.shape}"
        )
    offsets = _block_offsets(schema)
    columns = []
    for attribute, offset in zip(schema, offsets):
        block = matrix[:, offset : offset + attribute.cardinality]
        row_sums = block.sum(axis=1)
        if not (row_sums == 1).all():
            bad = int(np.flatnonzero(row_sums != 1)[0])
            raise DataError(
                f"sample {bad} does not mark exactly one value for "
                f"attribute {attribute.name!r}"
            )
        columns.append(block.argmax(axis=1))
    rows = np.column_stack(columns) if columns else np.empty((0, 0), dtype=np.int64)
    return Dataset(schema, rows.astype(np.int64))


def dataset_to_tuple_matrix(dataset: Dataset) -> np.ndarray:
    """Figure 6: R-tuples form — one column per joint cell.

    Returns an ``(N, num_cells)`` 0/1 array; columns are ordered by the
    C-order (row-major) flattening of the joint tensor, so column sums equal
    ``table.counts.ravel()``.
    """
    schema = dataset.schema
    matrix = np.zeros((len(dataset), schema.num_cells), dtype=np.int64)
    flat = np.ravel_multi_index(tuple(dataset.rows.T), schema.shape)
    matrix[np.arange(len(dataset)), flat] = 1
    return matrix


def tuple_matrix_to_dataset(schema: Schema, matrix: np.ndarray) -> Dataset:
    """Inverse of :func:`dataset_to_tuple_matrix`."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[1] != schema.num_cells:
        raise DataError(
            f"tuple matrix must have {schema.num_cells} columns, got shape "
            f"{matrix.shape}"
        )
    row_sums = matrix.sum(axis=1)
    if not (row_sums == 1).all():
        bad = int(np.flatnonzero(row_sums != 1)[0])
        raise DataError(f"sample {bad} does not mark exactly one joint cell")
    flat = matrix.argmax(axis=1)
    rows = np.column_stack(np.unravel_index(flat, schema.shape))
    return Dataset(schema, rows.astype(np.int64))


def tuple_matrix_to_contingency(
    schema: Schema, matrix: np.ndarray
) -> ContingencyTable:
    """Sum the R-tuples columns into contingency cells (Figure 6 bottom row).

    The paper: "the summations of the triples are the values of the cells in
    Figure 1."
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[1] != schema.num_cells:
        raise DataError(
            f"tuple matrix must have {schema.num_cells} columns, got shape "
            f"{matrix.shape}"
        )
    counts = matrix.sum(axis=0).reshape(schema.shape)
    return ContingencyTable(schema, counts)


def tuple_column_labels(schema: Schema) -> list[str]:
    """Human-readable labels for the R-tuples columns, e.g. ``"ABC=121"``.

    Value numbers are 1-based to match the paper's notation
    (``N_111, N_121, ...``).
    """
    prefix = "".join(name[0] for name in schema.names)
    labels = []
    for index in np.ndindex(schema.shape):
        digits = "".join(str(i + 1) for i in index)
        labels.append(f"{prefix}={digits}")
    return labels


def _block_offsets(schema: Schema) -> list[int]:
    offsets = []
    position = 0
    for attribute in schema:
        offsets.append(position)
        position += attribute.cardinality
    return offsets
