"""Attribute schemas for categorical survey data.

The paper works with discrete attributes such as ``SMOKING`` (3 values),
``CANCER`` (2 values) and ``FAMILY HISTORY OF CANCER`` (2 values).  A
:class:`Schema` is an ordered collection of :class:`Attribute` objects; the
order fixes the axis layout of every contingency table and joint-probability
tensor built from it.

The paper assumes each attribute's value range is *complete* ("made so by
adding the value 'other', if necessary"); :meth:`Attribute.completed`
implements exactly that.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import SchemaError

OTHER_LABEL = "other"


@dataclass(frozen=True)
class Attribute:
    """A named categorical attribute with a fixed, ordered set of values.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"SMOKING"``.  Must be non-empty.
    values:
        Ordered value labels, e.g. ``("smoker", "non-smoker", ...)``.
        Must contain at least two distinct labels.
    """

    name: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if not isinstance(self.values, tuple):
            # Allow lists at construction time for convenience.
            object.__setattr__(self, "values", tuple(self.values))
        if len(self.values) < 2:
            raise SchemaError(
                f"attribute {self.name!r} needs at least 2 values, "
                f"got {len(self.values)}"
            )
        if len(set(self.values)) != len(self.values):
            raise SchemaError(f"attribute {self.name!r} has duplicate values")

    @property
    def cardinality(self) -> int:
        """Number of values this attribute can take."""
        return len(self.values)

    def index_of(self, value: str | int) -> int:
        """Map a value label (or an already-valid index) to its index."""
        if isinstance(value, int) and not isinstance(value, bool):
            if 0 <= value < len(self.values):
                return value
            raise SchemaError(
                f"value index {value} out of range for attribute "
                f"{self.name!r} (cardinality {self.cardinality})"
            )
        try:
            return self.values.index(value)
        except ValueError:
            raise SchemaError(
                f"unknown value {value!r} for attribute {self.name!r}; "
                f"known values: {list(self.values)}"
            ) from None

    def value_at(self, index: int) -> str:
        """Return the label of the value at ``index``."""
        if not 0 <= index < len(self.values):
            raise SchemaError(
                f"value index {index} out of range for attribute {self.name!r}"
            )
        return self.values[index]

    def completed(self) -> "Attribute":
        """Return a copy with an ``"other"`` value appended if absent.

        Implements the paper's completeness assumption: every attribute's
        value range is made exhaustive by adding "other".
        """
        if OTHER_LABEL in self.values:
            return self
        return Attribute(self.name, self.values + (OTHER_LABEL,))


class Schema:
    """An ordered set of attributes defining the shape of a joint space.

    The i-th attribute corresponds to axis i of every count / probability
    tensor built against this schema.
    """

    def __init__(self, attributes: Sequence[Attribute]):
        attributes = tuple(attributes)
        if not attributes:
            raise SchemaError("schema needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes = attributes
        self._axis_by_name = {a.name: i for i, a in enumerate(attributes)}

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}[{a.cardinality}]" for a in self)
        return f"Schema({inner})"

    # -- lookups ------------------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def shape(self) -> tuple[int, ...]:
        """Tensor shape ``(I, J, K, ...)`` implied by the attribute order."""
        return tuple(a.cardinality for a in self._attributes)

    @property
    def num_cells(self) -> int:
        """Total number of joint cells ``I*J*K*...``."""
        size = 1
        for a in self._attributes:
            size *= a.cardinality
        return size

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``."""
        try:
            return self._attributes[self._axis_by_name[name]]
        except KeyError:
            raise SchemaError(
                f"no attribute named {name!r}; schema has {list(self.names)}"
            ) from None

    def axis(self, name: str) -> int:
        """Return the tensor axis of attribute ``name``."""
        try:
            return self._axis_by_name[name]
        except KeyError:
            raise SchemaError(
                f"no attribute named {name!r}; schema has {list(self.names)}"
            ) from None

    def axes(self, names: Sequence[str]) -> tuple[int, ...]:
        """Return tensor axes for several attribute names (input order)."""
        return tuple(self.axis(n) for n in names)

    def drop_axes(self, names: Sequence[str]) -> tuple[int, ...]:
        """Axes *not* covered by ``names``, in ascending order.

        These are the axes a tensor sum drops to marginalize onto the
        subset — the complement every marginalization site needs.
        """
        keep = set(self.axes(names))
        return tuple(ax for ax in range(len(self)) if ax not in keep)

    def canonical_subset(self, names: Sequence[str]) -> tuple[str, ...]:
        """Return ``names`` sorted into schema order, validating membership.

        Raises :class:`SchemaError` on unknown or duplicate names.  Constraint
        keys and marginal identifiers always use this canonical order so that
        ``("B", "A")`` and ``("A", "B")`` denote the same marginal.
        """
        axes = [self.axis(n) for n in names]
        if len(set(axes)) != len(axes):
            raise SchemaError(f"duplicate attribute names in subset: {names}")
        return tuple(n for _, n in sorted(zip(axes, names)))

    def indices_of(self, assignment: Mapping[str, str | int]) -> dict[str, int]:
        """Convert ``{name: label-or-index}`` to ``{name: index}``."""
        return {
            name: self.attribute(name).index_of(value)
            for name, value in assignment.items()
        }

    def labels_of(self, assignment: Mapping[str, int]) -> dict[str, str]:
        """Convert ``{name: index}`` back to ``{name: label}``."""
        return {
            name: self.attribute(name).value_at(index)
            for name, index in assignment.items()
        }

    def subschema(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names`` (kept in schema order)."""
        ordered = self.canonical_subset(names)
        return Schema([self.attribute(n) for n in ordered])

    def completed(self) -> "Schema":
        """Schema with every attribute's value range made exhaustive."""
        return Schema([a.completed() for a in self._attributes])
