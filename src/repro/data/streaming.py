"""Incremental table accumulation for data arriving in batches.

The paper's data sources (surveys, telemetry downlinks) arrive over time;
a :class:`TableBuilder` accumulates batches of samples, records, tables or
datasets into one contingency table without keeping raw samples around,
and can hand out snapshots for interim discovery runs.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import DataError


class TableBuilder:
    """Accumulates observations into a contingency table."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._counts = np.zeros(schema.shape, dtype=np.int64)
        self._batches = 0

    @property
    def total(self) -> int:
        """Samples accumulated so far."""
        return int(self._counts.sum())

    @property
    def batches(self) -> int:
        """Number of add_* calls absorbed."""
        return self._batches

    def add_sample(self, sample: Sequence[str | int]) -> None:
        """Tally one sample (labels or indices, schema order)."""
        if len(sample) != len(self.schema):
            raise DataError(
                f"sample has {len(sample)} fields, schema has "
                f"{len(self.schema)} attributes"
            )
        index = tuple(
            attribute.index_of(value)
            for attribute, value in zip(self.schema, sample)
        )
        self._counts[index] += 1
        self._batches += 1

    def add_record(self, record: Mapping[str, str | int]) -> None:
        """Tally one dict record ``{attribute name: value}``."""
        self.add_sample([record[name] for name in self.schema.names])

    def add_samples(self, samples: Iterable[Sequence[str | int]]) -> None:
        """Tally a batch of samples."""
        batch = ContingencyTable.from_samples(self.schema, samples)
        self._counts += batch.counts
        self._batches += 1

    def add_dataset(self, dataset: Dataset) -> None:
        """Absorb a whole dataset."""
        if dataset.schema != self.schema:
            raise DataError("dataset schema does not match builder schema")
        self._counts += dataset.to_contingency().counts
        self._batches += 1

    def add_table(self, table: ContingencyTable) -> None:
        """Merge another contingency table (e.g. from another site)."""
        if table.schema != self.schema:
            raise DataError("table schema does not match builder schema")
        self._counts += table.counts
        self._batches += 1

    def snapshot(self) -> ContingencyTable:
        """Current accumulated table (a copy; the builder keeps counting)."""
        return ContingencyTable(self.schema, self._counts.copy())

    def reset(self) -> None:
        """Drop all accumulated counts."""
        self._counts = np.zeros(self.schema.shape, dtype=np.int64)
        self._batches = 0
