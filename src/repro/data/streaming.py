"""Incremental table accumulation for data arriving in batches.

The paper's data sources (surveys, telemetry downlinks) arrive over time;
a :class:`TableBuilder` accumulates batches of samples, records, tables or
datasets into one contingency table without keeping raw samples around,
and can hand out snapshots for interim discovery runs.  Shard accumulators
(one builder per ingest worker) combine with :meth:`TableBuilder.merge`.

Every path that accepts schema-bearing data validates compatibility —
attribute names *and* per-attribute category sets — and reports exactly
what differs, so a mis-wired feed fails loudly instead of tallying counts
into the wrong cells.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import DataError


def describe_schema_mismatch(expected: Schema, got: Schema) -> str:
    """Human-readable diff between two schemas (names and category sets).

    Returns an empty string when the schemas are equal.
    """
    if expected == got:
        return ""
    problems: list[str] = []
    expected_names = set(expected.names)
    got_names = set(got.names)
    missing = [n for n in expected.names if n not in got_names]
    unexpected = [n for n in got.names if n not in expected_names]
    if missing:
        problems.append(f"missing attributes {missing}")
    if unexpected:
        problems.append(f"unexpected attributes {unexpected}")
    if not missing and not unexpected and expected.names != got.names:
        problems.append(
            f"attribute order differs: expected {list(expected.names)}, "
            f"got {list(got.names)}"
        )
    for name in expected.names:
        if name not in got_names:
            continue
        ours = expected.attribute(name).values
        theirs = got.attribute(name).values
        if ours != theirs:
            problems.append(
                f"attribute {name!r} categories differ: expected "
                f"{list(ours)}, got {list(theirs)}"
            )
    return "; ".join(problems)


class TableBuilder:
    """Accumulates observations into a contingency table."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._counts = np.zeros(schema.shape, dtype=np.int64)
        self._batches = 0

    def _require_compatible(self, other: Schema, what: str) -> None:
        """Raise a :class:`DataError` naming every schema difference."""
        mismatch = describe_schema_mismatch(self.schema, other)
        if mismatch:
            raise DataError(
                f"{what} schema is incompatible with the builder schema: "
                f"{mismatch}"
            )

    @property
    def total(self) -> int:
        """Samples accumulated so far."""
        return int(self._counts.sum())

    @property
    def batches(self) -> int:
        """Number of add_* calls absorbed."""
        return self._batches

    def add_sample(self, sample: Sequence[str | int]) -> None:
        """Tally one sample (labels or indices, schema order)."""
        if len(sample) != len(self.schema):
            raise DataError(
                f"sample has {len(sample)} fields, schema has "
                f"{len(self.schema)} attributes"
            )
        index = tuple(
            attribute.index_of(value)
            for attribute, value in zip(self.schema, sample)
        )
        self._counts[index] += 1
        self._batches += 1

    def add_record(self, record: Mapping[str, str | int]) -> None:
        """Tally one dict record ``{attribute name: value}``.

        Every schema attribute must be present (a missing one would be a
        miscount); keys the schema does not name — timestamps, frame ids,
        other metadata riding along with a telemetry record — are ignored.
        """
        missing = [n for n in self.schema.names if n not in record]
        if missing:
            raise DataError(
                f"record is missing attributes {missing}; schema expects "
                f"{list(self.schema.names)}"
            )
        self.add_sample([record[name] for name in self.schema.names])

    def add_samples(self, samples: Iterable[Sequence[str | int]]) -> None:
        """Tally a batch of samples."""
        batch = ContingencyTable.from_samples(self.schema, samples)
        self._counts += batch.counts
        self._batches += 1

    def add_dataset(self, dataset: Dataset) -> None:
        """Absorb a whole dataset."""
        self._require_compatible(dataset.schema, "dataset")
        self._counts += dataset.to_contingency().counts
        self._batches += 1

    def add_table(self, table: ContingencyTable) -> None:
        """Merge another contingency table (e.g. from another site)."""
        self._require_compatible(table.schema, "table")
        self._counts += table.counts
        self._batches += 1

    def merge(self, other: "TableBuilder") -> None:
        """Absorb another builder's accumulated counts (shard combining).

        The other builder is left untouched; its counts are added to this
        one's.  Use this to combine per-worker accumulators before an
        update or interim discovery run.
        """
        if not isinstance(other, TableBuilder):
            raise DataError(
                f"merge expects a TableBuilder, got {type(other).__name__}"
            )
        self._require_compatible(other.schema, "merged builder")
        self._counts += other._counts
        self._batches += other._batches

    def snapshot(self) -> ContingencyTable:
        """Current accumulated table (a copy; the builder keeps counting)."""
        return ContingencyTable(self.schema, self._counts.copy())

    def reset(self) -> None:
        """Drop all accumulated counts."""
        self._counts = np.zeros(self.schema.shape, dtype=np.int64)
        self._batches = 0
