"""Discretization of continuous measurements into categorical attributes.

The paper's pipeline consumes categorical attributes only, but its motivating
data sources (wind-tunnel tests, spacecraft observations, simulations) are
largely continuous.  This module bins continuous columns so such data can
enter the contingency-table pipeline.

Two binning rules are provided:

- :func:`equal_width_edges`: bins of equal numeric width over the observed
  range.
- :func:`quantile_edges`: bins holding (approximately) equal numbers of
  samples.

A :class:`Discretizer` fits edges on training data and then maps values —
including previously unseen out-of-range values, which clip to the extreme
bins — to value indices of a generated :class:`~repro.data.schema.Attribute`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.schema import Attribute
from repro.exceptions import DataError


def equal_width_edges(values: Sequence[float], bins: int) -> np.ndarray:
    """Interior bin edges splitting the observed range into equal widths."""
    values = _validated(values, bins)
    low = float(np.min(values))
    high = float(np.max(values))
    if low == high:
        raise DataError("cannot bin a constant column into multiple bins")
    return np.linspace(low, high, bins + 1)[1:-1]


def quantile_edges(values: Sequence[float], bins: int) -> np.ndarray:
    """Interior bin edges at evenly spaced quantiles of the data."""
    values = _validated(values, bins)
    quantiles = np.linspace(0.0, 1.0, bins + 1)[1:-1]
    edges = np.quantile(values, quantiles)
    if len(np.unique(edges)) != len(edges):
        raise DataError(
            "quantile edges are not distinct; data is too discrete for "
            f"{bins} quantile bins — use equal-width bins or fewer bins"
        )
    return edges


class Discretizer:
    """Maps a continuous column to a categorical attribute.

    Parameters
    ----------
    name:
        Name for the generated attribute.
    edges:
        Sorted interior bin edges; ``len(edges) + 1`` bins result.  A value
        ``v`` lands in bin ``i`` iff ``edges[i-1] <= v < edges[i]`` (with
        open extremes, so any real value maps to some bin).
    """

    def __init__(self, name: str, edges: Sequence[float]):
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size == 0:
            raise DataError("edges must be a non-empty 1-D sequence")
        if not (np.diff(edges) > 0).all():
            raise DataError("edges must be strictly increasing")
        self.name = name
        self.edges = edges

    @classmethod
    def fit(
        cls,
        name: str,
        values: Sequence[float],
        bins: int,
        method: str = "width",
    ) -> "Discretizer":
        """Fit bin edges on training values using the named method."""
        if method == "width":
            edges = equal_width_edges(values, bins)
        elif method == "quantile":
            edges = quantile_edges(values, bins)
        else:
            raise DataError(
                f"unknown binning method {method!r}; use 'width' or 'quantile'"
            )
        return cls(name, edges)

    @property
    def num_bins(self) -> int:
        return len(self.edges) + 1

    def attribute(self) -> Attribute:
        """The categorical attribute induced by the bins.

        Labels describe the intervals, e.g. ``"<2.5"``, ``"[2.5,5.0)"``,
        ``">=5.0"``.
        """
        labels = [f"<{self.edges[0]:g}"]
        for low, high in zip(self.edges[:-1], self.edges[1:]):
            labels.append(f"[{low:g},{high:g})")
        labels.append(f">={self.edges[-1]:g}")
        return Attribute(self.name, tuple(labels))

    def transform(self, values: Sequence[float]) -> np.ndarray:
        """Map values to bin indices (0-based, length ``num_bins``)."""
        values = np.asarray(values, dtype=float)
        if np.isnan(values).any():
            raise DataError("cannot discretize NaN values")
        return np.searchsorted(self.edges, values, side="right")


def _validated(values: Sequence[float], bins: int) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise DataError("values must be a non-empty 1-D sequence")
    if np.isnan(array).any():
        raise DataError("values must not contain NaN")
    if bins < 2:
        raise DataError(f"need at least 2 bins, got {bins}")
    return array
