"""repro.store — the durable persistence layer.

Replaces ad-hoc JSON blobs with a SQLite-backed store whose schema is
derived from typed record models (:mod:`repro.store.records`):

- :class:`KBStore` persists named knowledge bases with full revision
  history and content-addressed model artifacts — ``repro history NAME``
  lists revisions, ``repro diff NAME REV1 REV2`` diffs two of them, and
  a reloaded knowledge base is byte-identical in canonical JSON to the
  saved one.
- :class:`RunRegistry` records benchmark and scenario runs under
  content-derived run_ids; ``benchmarks/check_regression.py`` sources
  its comparable baselines from it.

Quick start::

    from repro.store import KBStore

    store = KBStore("kb.db")
    store.save("prod", kb)
    kb.update(delta)
    store.save("prod", kb)            # appends revision 1 + artifact
    store.history("prod")             # [RevisionRecord(number=0), ...]
    store.diff("prod", 0, 1)          # constraints added/removed/changed
    restored = store.load("prod")     # bit-identical to kb
"""

from repro.store.kb_store import KBDiff, KBStore
from repro.store.records import (
    ArtifactRecord,
    KBRecord,
    RevisionRecord,
    RunRecord,
)
from repro.store.runs import RunRegistry, config_hash, current_git_sha

__all__ = [
    "ArtifactRecord",
    "KBDiff",
    "KBRecord",
    "KBStore",
    "RevisionRecord",
    "RunRecord",
    "RunRegistry",
    "config_hash",
    "current_git_sha",
]
