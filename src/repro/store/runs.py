"""The run registry: benchmark and scenario runs recorded under run_ids.

Every benchmark trajectory record (``benchmarks/run_all.py --json``) and
scenario conformance outcome can be written through a
:class:`RunRegistry` instead of (or alongside) the flat
``BENCH_discovery.json`` list.  A run's ``run_id`` is derived from its
*content* (:func:`repro.core.serialization.content_hash` over the kind,
timestamp, config hash, git sha, and metrics document), so recording the
same run twice — e.g. re-running the importer over a flat file — is a
no-op, and a ``config.yaml``-style mapping of experiment passes to
run_ids stays reproducible.

``benchmarks/check_regression.py`` sources its comparable baselines from
:meth:`RunRegistry.baseline_records`; the legacy flat-file path is a thin
shim that imports the file into an in-memory registry and asks the same
query (see :func:`import_trajectory`).
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

from repro.core.serialization import content_hash
from repro.discovery.config import DiscoveryConfig
from repro.exceptions import DataError
from repro.store.db import StoreDB, utc_now
from repro.store.records import RunRecord

__all__ = [
    "RunRegistry",
    "config_hash",
    "current_git_sha",
]


def config_hash(config: DiscoveryConfig | dict) -> str:
    """Portable content hash of a discovery (or ad-hoc) configuration.

    A :class:`DiscoveryConfig` hashes through its :meth:`to_dict`, which
    deliberately excludes the machine-local execution knobs
    (``max_workers``, ``parallel_scan_threshold``) — two machines running
    the same *statistical* configuration produce the same hash even with
    different parallelism, so their runs are comparable in the registry.
    """
    if isinstance(config, DiscoveryConfig):
        config = config.to_dict()
    return content_hash(config)


def current_git_sha() -> str:
    """The checked-out commit, or "" when unknown (no git, no checkout)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return ""
    return result.stdout.strip() if result.returncode == 0 else ""


class RunRegistry:
    """SQLite-backed registry of benchmark/scenario runs."""

    RECORD_TYPES = (RunRecord,)

    def __init__(self, path: str | Path):
        self._db = StoreDB(path, self.RECORD_TYPES)

    @property
    def path(self) -> str:
        return self._db.path

    # -- writing ------------------------------------------------------------------

    def record(
        self,
        kind: str,
        metrics: dict,
        smoke: bool,
        cpus: int,
        config_hash: str = "",
        git_sha: str = "",
        created_at: str | None = None,
    ) -> RunRecord:
        """Record one run; returns the (possibly pre-existing) record.

        ``run_id`` is the first 16 hex digits of the content hash over
        everything identifying the run, so identical runs collapse to
        one row (idempotent imports) while any metric difference yields
        a fresh id.
        """
        if not isinstance(metrics, dict):
            raise DataError(
                f"metrics must be a dict, got {type(metrics).__name__}"
            )
        created_at = created_at or utc_now()
        run_id = content_hash(
            {
                "kind": kind,
                "created_at": created_at,
                "smoke": bool(smoke),
                "cpus": int(cpus),
                "config_hash": config_hash,
                "git_sha": git_sha,
                "metrics": metrics,
            }
        )[:16]
        record = RunRecord(
            run_id=run_id,
            kind=kind,
            created_at=created_at,
            smoke=bool(smoke),
            cpus=int(cpus),
            config_hash=config_hash,
            git_sha=git_sha,
            metrics=metrics,
        )
        self._db.insert_ignore(record)
        return record

    # -- querying -----------------------------------------------------------------

    def runs(
        self,
        kind: str | None = None,
        smoke: bool | None = None,
    ) -> list[RunRecord]:
        """Recorded runs, oldest first, optionally filtered."""
        clauses = []
        params: list = []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if smoke is not None:
            clauses.append("smoke = ?")
            params.append(int(smoke))
        return self._db.select(
            RunRecord,
            where=" AND ".join(clauses),
            params=tuple(params),
            order_by="created_at, run_id",
        )

    def get(self, run_id: str) -> RunRecord:
        record = self._db.select_one(RunRecord, "run_id = ?", (run_id,))
        if record is None:
            raise DataError(f"no run {run_id!r} in the registry")
        return record

    def baseline_records(self, smoke: bool) -> list[dict]:
        """Benchmark metrics documents comparable to a candidate run.

        The query the perf-regression gate is built on: every benchmark
        run recorded with the same ``smoke`` flag (toy-size and full-size
        timings are never comparable), as the raw trajectory-record
        dicts ``check_regression.py`` scans for tracked ratios.
        """
        return [
            record.metrics
            for record in self.runs(kind="benchmark", smoke=smoke)
        ]

    # -- importing ----------------------------------------------------------------

    def import_trajectory(self, path: str | Path) -> int:
        """One-shot import of a flat ``BENCH_discovery.json`` trajectory.

        Each trajectory record becomes a ``benchmark`` run whose metrics
        document is the record itself, timestamped from the record, with
        the CPU count lifted from its parallel section.  Content-derived
        run_ids make re-imports no-ops; returns how many records were
        newly inserted.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise DataError(
                f"cannot import trajectory {path}: {error}"
            ) from None
        if not isinstance(data, list):
            data = [data]
        before = len(self.runs(kind="benchmark"))
        for entry in data:
            if not isinstance(entry, dict):
                raise DataError(
                    f"trajectory {path} holds a non-record entry: "
                    f"{type(entry).__name__}"
                )
            parallel = entry.get("parallel") or {}
            self.record(
                kind="benchmark",
                metrics=entry,
                smoke=bool(entry.get("smoke", False)),
                cpus=int(parallel.get("cpus", 0)),
                created_at=entry.get("timestamp") or utc_now(),
            )
        return len(self.runs(kind="benchmark")) - before

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"RunRegistry({self.path!r}, runs={len(self.runs())})"
