"""The durable knowledge-base store: named KBs, revisions, artifacts.

A :class:`KBStore` persists named
:class:`~repro.core.knowledge_base.ProbabilisticKnowledgeBase` objects in
SQLite with their *full revision history*.  Every :meth:`save` appends
the revisions the store has not seen yet and captures the current model
state as a content-addressed artifact — the canonical JSON of
``kb.to_dict()`` *minus* the revision list, addressed by its sha256
(:func:`repro.core.serialization.content_hash`).  Two revisions with
identical model content (e.g. a no-op update) therefore share one
artifact row, and :meth:`load` reassembles the exact original dict —
artifact plus stored revision rows — so a loaded knowledge base is
byte-identical in canonical JSON to the one that was saved.

Layout (DDL derived from :mod:`repro.store.records`):

- ``kbs``        — one row per name: latest revision + latest artifact.
- ``revisions``  — one row per (name, revision): the
  :class:`~repro.core.knowledge_base.Revision` metadata plus the
  artifact captured at that revision (None when the state was never
  saved — e.g. two in-memory updates between saves).
- ``artifacts``  — content-addressed canonical JSON payloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.serialization import canonical_bytes, content_hash
from repro.exceptions import DataError
from repro.store.db import StoreDB, utc_now
from repro.store.records import ArtifactRecord, KBRecord, RevisionRecord

__all__ = ["KBDiff", "KBStore"]


@dataclass(frozen=True)
class KBDiff:
    """What changed between two stored revisions of one knowledge base.

    ``constraints_added``/``constraints_removed`` are cell-constraint
    keys present in revision ``b`` but not ``a`` (and vice versa);
    ``constraints_changed`` are keys present in both whose fitted ``a``
    factor moved.  ``artifact_a``/``artifact_b`` are the revisions'
    content addresses — equal exactly when the model states are
    byte-identical.
    """

    kb_name: str
    revision_a: int
    revision_b: int
    artifact_a: str
    artifact_b: str
    sample_size_a: int
    sample_size_b: int
    constraints_added: tuple
    constraints_removed: tuple
    constraints_changed: tuple

    @property
    def identical(self) -> bool:
        return self.artifact_a == self.artifact_b

    def describe(self) -> str:
        """Readable multi-line diff report."""
        lines = [
            f"{self.kb_name}: revision {self.revision_a} -> "
            f"{self.revision_b}",
            f"  samples: {self.sample_size_a} -> {self.sample_size_b}",
            f"  artifact: {self.artifact_a[:12]} -> {self.artifact_b[:12]}"
            + ("  (identical)" if self.identical else ""),
        ]
        for names, values in self.constraints_added:
            lines.append(f"  + constraint {_key_text(names, values)}")
        for names, values in self.constraints_removed:
            lines.append(f"  - constraint {_key_text(names, values)}")
        for (names, values), before, after in self.constraints_changed:
            lines.append(
                f"  ~ constraint {_key_text(names, values)}: "
                f"a {before:.6g} -> {after:.6g}"
            )
        if (
            not self.constraints_added
            and not self.constraints_removed
            and not self.constraints_changed
        ):
            lines.append("  (no constraint changes)")
        return "\n".join(lines)


def _key_text(names, values) -> str:
    return (
        "(" + ", ".join(f"{n}={v}" for n, v in zip(names, values)) + ")"
    )


class KBStore:
    """SQLite-backed store of named knowledge bases with revision history."""

    RECORD_TYPES = (KBRecord, ArtifactRecord, RevisionRecord)

    def __init__(self, path: str | Path):
        self._db = StoreDB(path, self.RECORD_TYPES)

    @property
    def path(self) -> str:
        return self._db.path

    # -- saving -------------------------------------------------------------------

    def save(self, name: str, kb: ProbabilisticKnowledgeBase) -> str:
        """Persist ``kb`` under ``name``; returns the artifact's sha256.

        Appends every revision the store has not yet seen (validating
        that the overlap agrees — a different history under the same
        name is an error, not an overwrite), captures the current model
        state as a content-addressed artifact, and points the latest
        revision at it.  Saving an unchanged knowledge base is a no-op
        apart from the ``updated_at`` touch.
        """
        if not name or "/" in name:
            raise DataError(
                f"knowledge base name {name!r} must be non-empty and "
                f"contain no '/'"
            )
        document = kb.to_dict()
        revisions = document.pop("revisions", [])
        payload = canonical_bytes(document)
        sha = content_hash(document)
        now = utc_now()
        self._db.insert_ignore(
            ArtifactRecord(
                sha256=sha,
                payload=payload.decode("utf-8"),
                size_bytes=len(payload),
                created_at=now,
            )
        )
        stored = self.history(name)
        self._check_lineage(name, stored, revisions)
        stored_max = stored[-1].number if stored else -1
        latest_number = revisions[-1]["number"] if revisions else -1
        for item in revisions:
            if item["number"] <= stored_max:
                continue
            self._db.insert(
                RevisionRecord(
                    kb_name=name,
                    number=item["number"],
                    mode=item["mode"],
                    sample_size=item["sample_size"],
                    added_samples=item["added_samples"],
                    constraints_added=item["constraints_added"],
                    constraints_dropped=item["constraints_dropped"],
                    artifact_sha=(
                        sha if item["number"] == latest_number else None
                    ),
                    created_at=now,
                )
            )
        existing = self._db.select_one(
            KBRecord, "name = ?", (name,)
        )
        self._db.insert(
            KBRecord(
                name=name,
                created_at=existing.created_at if existing else now,
                updated_at=now,
                latest_revision=max(latest_number, stored_max),
                latest_artifact=sha,
            ),
            replace=True,
        )
        return sha

    def _check_lineage(
        self, name: str, stored: list, revisions: list
    ) -> None:
        """Saved history must extend the stored one, never contradict it."""
        stored_by_number = {record.number: record for record in stored}
        for item in revisions:
            record = stored_by_number.get(item["number"])
            if record is None:
                continue
            matches = (
                record.mode == item["mode"]
                and record.sample_size == item["sample_size"]
                and record.added_samples == item["added_samples"]
            )
            if not matches:
                raise DataError(
                    f"knowledge base {name!r}: revision {item['number']} "
                    f"diverges from the stored history (stored "
                    f"{record.mode!r} N={record.sample_size}, saving "
                    f"{item['mode']!r} N={item['sample_size']}); use a "
                    f"different name for a different lineage"
                )
        if stored and revisions:
            # A shorter history than what is stored is also divergence:
            # the caller holds a stale fork of this knowledge base.
            if revisions[-1]["number"] < stored[-1].number:
                raise DataError(
                    f"knowledge base {name!r}: saving revision "
                    f"{revisions[-1]['number']} but the store already "
                    f"holds revision {stored[-1].number}; load the "
                    f"latest state before updating"
                )

    # -- loading ------------------------------------------------------------------

    def load(
        self, name: str, revision: int | None = None
    ) -> ProbabilisticKnowledgeBase:
        """Reassemble a stored knowledge base, at ``revision`` or latest.

        The result is byte-identical (in canonical JSON) to the
        knowledge base whose :meth:`save` captured that revision.
        """
        record = self._require_kb(name)
        if revision is None or revision == record.latest_revision:
            sha = record.latest_artifact
            number = record.latest_revision
        else:
            row = self._require_revision(name, revision)
            if row.artifact_sha is None:
                raise DataError(
                    f"knowledge base {name!r} revision {revision} has no "
                    f"stored artifact (the state was never saved at that "
                    f"revision); artifacts exist for revisions "
                    f"{self._captured_revisions(name)}"
                )
            sha = row.artifact_sha
            number = revision
        document = self.artifact(sha)
        document["revisions"] = [
            _revision_dict(row)
            for row in self.history(name)
            if row.number <= number
        ]
        return ProbabilisticKnowledgeBase.from_dict(document)

    def artifact(self, sha: str) -> dict:
        """The parsed canonical JSON document stored under ``sha``."""
        record = self._db.select_one(
            ArtifactRecord, "sha256 = ?", (sha,)
        )
        if record is None:
            raise DataError(f"no artifact {sha!r} in the store")
        return json.loads(record.payload)

    # -- history ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Stored knowledge-base names, sorted."""
        return sorted(
            record.name for record in self._db.select(KBRecord)
        )

    def describe(self, name: str) -> KBRecord:
        """The store's row for ``name`` (latest revision + artifact)."""
        return self._require_kb(name)

    def history(self, name: str) -> list[RevisionRecord]:
        """Every stored revision of ``name``, oldest first."""
        return self._db.select(
            RevisionRecord,
            where="kb_name = ?",
            params=(name,),
            order_by="number",
        )

    def diff(self, name: str, revision_a: int, revision_b: int) -> KBDiff:
        """Constraint/fingerprint diff between two captured revisions."""
        document_a, sha_a = self._revision_document(name, revision_a)
        document_b, sha_b = self._revision_document(name, revision_b)
        cells_a = _cell_factor_map(document_a)
        cells_b = _cell_factor_map(document_b)
        added = tuple(
            key for key in cells_b if key not in cells_a
        )
        removed = tuple(
            key for key in cells_a if key not in cells_b
        )
        changed = tuple(
            (key, cells_a[key], cells_b[key])
            for key in cells_a
            if key in cells_b and cells_a[key] != cells_b[key]
        )
        return KBDiff(
            kb_name=name,
            revision_a=revision_a,
            revision_b=revision_b,
            artifact_a=sha_a,
            artifact_b=sha_b,
            sample_size_a=int(document_a["sample_size"]),
            sample_size_b=int(document_b["sample_size"]),
            constraints_added=added,
            constraints_removed=removed,
            constraints_changed=changed,
        )

    # -- internals ----------------------------------------------------------------

    def _require_kb(self, name: str) -> KBRecord:
        record = self._db.select_one(KBRecord, "name = ?", (name,))
        if record is None:
            raise DataError(
                f"no knowledge base named {name!r} in the store "
                f"(stored: {self.names()})"
            )
        return record

    def _require_revision(self, name: str, number: int) -> RevisionRecord:
        self._require_kb(name)
        row = self._db.select_one(
            RevisionRecord,
            "kb_name = ? AND number = ?",
            (name, number),
        )
        if row is None:
            numbers = [record.number for record in self.history(name)]
            raise DataError(
                f"knowledge base {name!r} has no revision {number} "
                f"(stored revisions: {numbers})"
            )
        return row

    def _captured_revisions(self, name: str) -> list[int]:
        return [
            row.number
            for row in self.history(name)
            if row.artifact_sha is not None
        ]

    def _revision_document(self, name: str, number: int):
        record = self._require_kb(name)
        if number == record.latest_revision:
            sha = record.latest_artifact
        else:
            row = self._require_revision(name, number)
            if row.artifact_sha is None:
                raise DataError(
                    f"knowledge base {name!r} revision {number} has no "
                    f"stored artifact; artifacts exist for revisions "
                    f"{self._captured_revisions(name)}"
                )
            sha = row.artifact_sha
        return self.artifact(sha), sha

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "KBStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"KBStore({self.path!r}, kbs={self.names()})"


def _revision_dict(row: RevisionRecord) -> dict:
    """A stored revision row → the KB format's revision dict."""
    return {
        "number": row.number,
        "mode": row.mode,
        "sample_size": row.sample_size,
        "added_samples": row.added_samples,
        "constraints_added": row.constraints_added,
        "constraints_dropped": row.constraints_dropped,
    }


def _cell_factor_map(document: dict) -> dict:
    """Artifact dict → {cell key: fitted a factor}."""
    return {
        (
            tuple(item["attributes"]),
            tuple(int(v) for v in item["values"]),
        ): float(item["a"])
        for item in document.get("cell_factors", [])
    }
