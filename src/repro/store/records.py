"""Typed record models — the single source of truth for the store schema.

Each table in the store is described *once*, as a frozen dataclass; the
SQLite DDL, the insert column list, and the row↔record converters are all
derived from the dataclass fields (the pydantic→DDL split of the SimCash
persistence layer, reproduced with stdlib dataclasses).  Adding a column
means adding a field — there is no second schema to keep in sync.

Field conventions
-----------------
- Python types map to SQLite affinities: ``str``→TEXT, ``int``→INTEGER,
  ``float``→REAL, ``bool``→INTEGER (0/1), ``dict``/``list``→TEXT holding
  canonical JSON.
- ``Optional[...]`` (``T | None``) drops the NOT NULL constraint.
- ``field(metadata={"pk": True})`` marks primary-key columns; several
  fields marked ``pk`` form a composite primary key.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import get_args, get_origin, get_type_hints
import types

from repro.core.serialization import canonical_json
from repro.exceptions import DataError
import json

__all__ = [
    "ArtifactRecord",
    "KBRecord",
    "RevisionRecord",
    "RunRecord",
    "create_table_sql",
    "from_row",
    "record_columns",
    "table_name",
    "to_row",
]

#: Python type → SQLite column affinity.  bool precedes int (bool is an
#: int subclass, but the *annotation* is matched here, not a value).
_AFFINITY = {
    str: "TEXT",
    bool: "INTEGER",
    int: "INTEGER",
    float: "REAL",
    dict: "TEXT",
    list: "TEXT",
}

#: Annotations stored as canonical-JSON text.
_JSON_TYPES = (dict, list)


def _unwrap_optional(annotation):
    """``T | None`` → (T, nullable=True); anything else → (T, False)."""
    if get_origin(annotation) in (types.UnionType,):
        args = [a for a in get_args(annotation) if a is not type(None)]
        if len(args) == 1 and len(get_args(annotation)) == 2:
            return args[0], True
    return annotation, False


def _base_type(annotation):
    """The concrete type behind a (possibly parameterized) annotation."""
    origin = get_origin(annotation)
    return origin if origin is not None else annotation


def _columns(record_cls):
    hints = get_type_hints(record_cls)
    columns = []
    for spec in fields(record_cls):
        annotation, nullable = _unwrap_optional(hints[spec.name])
        base = _base_type(annotation)
        if base not in _AFFINITY:
            raise DataError(
                f"{record_cls.__name__}.{spec.name}: unsupported column "
                f"type {annotation!r}"
            )
        columns.append(
            {
                "name": spec.name,
                "affinity": _AFFINITY[base],
                "nullable": nullable,
                "pk": bool(spec.metadata.get("pk")),
                "json": base in _JSON_TYPES,
                "bool": base is bool,
            }
        )
    return columns


def table_name(record_cls) -> str:
    """The SQLite table a record class persists to."""
    name = getattr(record_cls, "__table__", None)
    if not name:
        raise DataError(
            f"{record_cls.__name__} has no __table__ name"
        )
    return name


def record_columns(record_cls) -> list[str]:
    """Column names, in field order (the insert column list)."""
    return [column["name"] for column in _columns(record_cls)]


def create_table_sql(record_cls) -> str:
    """``CREATE TABLE IF NOT EXISTS`` DDL derived from the dataclass."""
    parts = []
    primary = []
    for column in _columns(record_cls):
        clause = f"{column['name']} {column['affinity']}"
        if not column["nullable"]:
            clause += " NOT NULL"
        parts.append(clause)
        if column["pk"]:
            primary.append(column["name"])
    if primary:
        parts.append(f"PRIMARY KEY ({', '.join(primary)})")
    return (
        f"CREATE TABLE IF NOT EXISTS {table_name(record_cls)} "
        f"({', '.join(parts)})"
    )


def to_row(record) -> tuple:
    """A record → the tuple of SQLite-ready column values."""
    row = []
    for column in _columns(type(record)):
        value = getattr(record, column["name"])
        if value is None:
            row.append(None)
        elif column["json"]:
            row.append(canonical_json(value))
        elif column["bool"]:
            row.append(int(value))
        else:
            row.append(value)
    return tuple(row)


def from_row(record_cls, row):
    """The inverse of :func:`to_row` for one fetched row."""
    values = {}
    for column, value in zip(_columns(record_cls), row):
        if value is None:
            values[column["name"]] = None
        elif column["json"]:
            values[column["name"]] = json.loads(value)
        elif column["bool"]:
            values[column["name"]] = bool(value)
        else:
            values[column["name"]] = value
    return record_cls(**values)


# -- the store's tables ---------------------------------------------------------------


@dataclass(frozen=True)
class KBRecord:
    """One named knowledge base hosted by the store."""

    __table__ = "kbs"

    name: str = field(metadata={"pk": True})
    created_at: str
    updated_at: str
    latest_revision: int
    latest_artifact: str


@dataclass(frozen=True)
class ArtifactRecord:
    """One content-addressed model artifact (canonical KB JSON, no history).

    ``sha256`` is the content address; identical model states — e.g. a
    no-op revision — share one artifact row, so revisions deduplicate
    storage by construction.
    """

    __table__ = "artifacts"

    sha256: str = field(metadata={"pk": True})
    payload: str
    size_bytes: int
    created_at: str


@dataclass(frozen=True)
class RevisionRecord:
    """One revision of one knowledge base.

    Mirrors :class:`repro.core.knowledge_base.Revision` exactly (the
    ``constraints_*`` lists hold cell-key dicts in the same shape the KB
    format serializes), plus the content address of the model artifact
    captured at this revision.  ``artifact_sha`` is None for historical
    revisions whose state was never saved (e.g. two in-memory updates
    followed by one save: the middle state is gone, its metadata is not).
    """

    __table__ = "revisions"

    kb_name: str = field(metadata={"pk": True})
    number: int = field(metadata={"pk": True})
    mode: str
    sample_size: int
    added_samples: int
    constraints_added: list
    constraints_dropped: list
    artifact_sha: str | None
    created_at: str


@dataclass(frozen=True)
class RunRecord:
    """One recorded benchmark or scenario run.

    ``run_id`` is derived from the record's content (see
    :meth:`repro.store.runs.RunRegistry.record`), so recording the same
    run twice — e.g. re-importing a flat trajectory file — is a no-op.
    ``metrics`` carries the full metrics document (for benchmark runs,
    the entire trajectory record ``run_all --json`` emits).
    """

    __table__ = "runs"

    run_id: str = field(metadata={"pk": True})
    kind: str
    created_at: str
    smoke: bool
    cpus: int
    config_hash: str
    git_sha: str
    metrics: dict
