"""Shared SQLite plumbing for the store's front-ends.

One :class:`StoreDB` owns a connection, ensures the DDL derived from the
record models exists, and serializes access behind a lock so the serving
layer can persist from executor threads.  :class:`~repro.store.kb_store.KBStore`
and :class:`~repro.store.runs.RunRegistry` are thin front-ends over it —
they can share one database file (the CLI's ``--store PATH`` does) or
live in separate files; every ``CREATE TABLE`` is ``IF NOT EXISTS``.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path

from repro.exceptions import DataError
from repro.store.records import (
    create_table_sql,
    from_row,
    record_columns,
    table_name,
    to_row,
)

__all__ = ["StoreDB", "utc_now"]


def utc_now() -> str:
    """ISO-8601 UTC timestamp, second resolution (row bookkeeping only)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class StoreDB:
    """A locked SQLite connection with record-model-derived tables."""

    def __init__(self, path: str | Path, record_types: tuple):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        # The serving layer saves from executor threads; sqlite3's
        # same-thread check is replaced by our own lock around every use.
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._lock = threading.RLock()
        self._closed = False
        with self._lock, self._conn:
            for record_cls in record_types:
                self._conn.execute(create_table_sql(record_cls))

    # -- record operations --------------------------------------------------------

    def insert(self, record, replace: bool = False) -> None:
        """Insert one record; ``replace`` upserts on the primary key."""
        record_cls = type(record)
        columns = record_columns(record_cls)
        verb = "INSERT OR REPLACE" if replace else "INSERT"
        sql = (
            f"{verb} INTO {table_name(record_cls)} "
            f"({', '.join(columns)}) "
            f"VALUES ({', '.join('?' for _ in columns)})"
        )
        with self._lock, self._conn:
            self._conn.execute(sql, to_row(record))

    def insert_ignore(self, record) -> bool:
        """Insert unless the primary key exists; True when inserted."""
        record_cls = type(record)
        columns = record_columns(record_cls)
        sql = (
            f"INSERT OR IGNORE INTO {table_name(record_cls)} "
            f"({', '.join(columns)}) "
            f"VALUES ({', '.join('?' for _ in columns)})"
        )
        with self._lock, self._conn:
            cursor = self._conn.execute(sql, to_row(record))
            return cursor.rowcount > 0

    def select(
        self,
        record_cls,
        where: str = "",
        params: tuple = (),
        order_by: str = "",
    ) -> list:
        """Fetch records; ``where``/``order_by`` are raw SQL fragments."""
        sql = (
            f"SELECT {', '.join(record_columns(record_cls))} "
            f"FROM {table_name(record_cls)}"
        )
        if where:
            sql += f" WHERE {where}"
        if order_by:
            sql += f" ORDER BY {order_by}"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [from_row(record_cls, row) for row in rows]

    def select_one(self, record_cls, where: str, params: tuple):
        """One record or None (errors if the key matches several)."""
        matches = self.select(record_cls, where=where, params=params)
        if len(matches) > 1:
            raise DataError(
                f"{table_name(record_cls)}: {where!r} matched "
                f"{len(matches)} rows, expected at most one"
            )
        return matches[0] if matches else None

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; idempotent."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def __enter__(self) -> "StoreDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
