"""Typed JSON error envelopes for the serving layer.

Every error a handler raises — a malformed query, an unknown knowledge
base, a worker death — leaves the server as the same JSON shape::

    {"error": {"type": "QueryError", "message": "...", "status": 400}}

Library exceptions (:class:`~repro.exceptions.ReproError` subclasses) map
to stable HTTP status codes by *type*, so a client can branch on
``error.type`` exactly as in-process code branches on the exception class.
Anything that is not a library error is a server bug and maps to 500 with
its type name preserved for diagnosis.
"""

from __future__ import annotations

import json

from repro.exceptions import (
    ConstraintError,
    ConvergenceError,
    DataError,
    ParallelError,
    QueryError,
    ReproError,
    SchemaError,
)

__all__ = ["ApiError", "error_body", "status_for"]

#: Library-exception → HTTP status.  Client errors (the request itself is
#: wrong) are 4xx; server-side failures (a worker died, a solver did not
#: converge) are 5xx.  Order matters only for documentation — lookup walks
#: the exception's MRO, so subclasses inherit their parent's status unless
#: listed explicitly.
_STATUS_BY_TYPE: tuple[tuple[type, int], ...] = (
    (QueryError, 400),
    (SchemaError, 400),
    (DataError, 422),
    (ConstraintError, 422),
    (ParallelError, 500),
    (ConvergenceError, 500),
    (ReproError, 500),
)


class ApiError(ReproError):
    """A serving-layer error with an explicit HTTP status.

    Raised by the router and handlers for conditions that have no
    library-exception analogue: unknown knowledge base (404), unknown
    route (404), wrong method (405), malformed JSON body (400), payload
    too large (413).
    """

    def __init__(self, status: int, message: str, kind: str | None = None):
        super().__init__(message)
        self.status = int(status)
        self.kind = kind or type(self).__name__


def status_for(error: BaseException) -> int:
    """HTTP status for an exception, by its place in the hierarchy."""
    if isinstance(error, ApiError):
        return error.status
    for exc_type, status in _STATUS_BY_TYPE:
        if isinstance(error, exc_type):
            return status
    return 500


def error_body(error: BaseException) -> tuple[int, bytes]:
    """``(status, JSON envelope bytes)`` for an exception."""
    status = status_for(error)
    kind = (
        error.kind if isinstance(error, ApiError) else type(error).__name__
    )
    payload = {
        "error": {
            "type": kind,
            "message": str(error),
            "status": status,
        }
    }
    return status, json.dumps(payload).encode("utf-8")
