"""The serving application: routes transport Requests to registry calls.

This layer is transport-agnostic: it consumes
:class:`~repro.serve.transport.Request` objects and produces
:class:`~repro.serve.transport.Response` objects, never touching a
socket.  That makes every endpoint testable in-process (build a Request,
``await app.handle(request)``) and keeps the HTTP framing swappable.

Routes
------
==========  =============================  =======================================
Method      Path                           Action
==========  =============================  =======================================
GET         ``/health``                    liveness + hosted KB names
GET         ``/stats``                     registry-wide serving counters
GET         ``/kbs``                       hosted knowledge-base names
GET         ``/kb/{name}``                 schema / revision / fingerprint
GET         ``/kb/{name}/stats``           per-KB counters (batcher, pool)
POST        ``/kb/{name}/query``           one query, coalesced
POST        ``/kb/{name}/batch``           explicit query batch, one unit
POST        ``/kb/{name}/mpe``             most-probable explanation
POST        ``/kb/{name}/explain``         constraint knock-out analysis
POST        ``/kb/{name}/update``          absorb rows/samples, hot-swap
GET (WS)    ``/kb/{name}/subscribe``       revision-change notifications
==========  =============================  =======================================

Every library :class:`~repro.exceptions.ReproError` maps to a typed JSON
envelope ``{"error": {"type", "message", "status"}}`` via
:mod:`repro.serve.errors`; unexpected exceptions become opaque 500s so a
handler bug cannot leak a traceback to the wire.
"""

from __future__ import annotations

from repro.exceptions import ReproError
from repro.serve.errors import ApiError, error_body
from repro.serve.registry import HostedKB, KnowledgeBaseRegistry
from repro.serve.transport import Request, Response, json_response

__all__ = ["ServeApp"]


class ServeApp:
    """Routes requests against one :class:`KnowledgeBaseRegistry`."""

    def __init__(self, registry: KnowledgeBaseRegistry):
        self.registry = registry

    async def handle(self, request: Request) -> Response:
        """Dispatch one HTTP request; errors become typed envelopes."""
        try:
            return await self._dispatch(request)
        except ReproError as error:
            status, body = error_body(error)
            return Response(status=status, body=body)
        except Exception:  # noqa: BLE001 — the wire never sees tracebacks
            status, body = error_body(
                ApiError(500, "internal server error", kind="ServerError")
            )
            return Response(status=status, body=body)

    def subscription_entry(self, request: Request) -> HostedKB:
        """The hosted KB a WebSocket upgrade on ``request.path`` targets.

        Raises :class:`ApiError` (404/400) when the path is not a
        subscribable endpoint, so the server can refuse the upgrade with
        a proper envelope.
        """
        segments = _segments(request.path)
        if (
            len(segments) == 3
            and segments[0] == "kb"
            and segments[2] == "subscribe"
        ):
            return self.registry.get(segments[1])
        raise ApiError(
            404, f"no WebSocket endpoint at {request.path!r}"
        )

    # -- routing ------------------------------------------------------------------

    async def _dispatch(self, request: Request) -> Response:
        segments = _segments(request.path)
        if segments == ["health"]:
            return self._health(request)
        if segments == ["stats"]:
            _require(request, "GET")
            return json_response(self.registry.stats())
        if segments == ["kbs"]:
            _require(request, "GET")
            return json_response({"kbs": self.registry.names()})
        if len(segments) >= 2 and segments[0] == "kb":
            entry = self.registry.get(segments[1])
            if len(segments) == 2:
                _require(request, "GET")
                entry.count("describe")
                return json_response(entry.describe())
            if len(segments) == 3:
                return await self._kb_action(
                    entry, segments[2], request
                )
        raise ApiError(404, f"no route for {request.path!r}")

    async def _kb_action(
        self, entry: HostedKB, action: str, request: Request
    ) -> Response:
        if action == "stats":
            _require(request, "GET")
            return json_response(entry.stats())
        if action == "subscribe":
            raise ApiError(
                400,
                "subscribe is a WebSocket endpoint; send an Upgrade "
                "handshake",
            )
        handlers = {
            "query": self._query,
            "batch": self._batch,
            "mpe": self._mpe,
            "explain": self._explain,
            "update": self._update,
        }
        handler = handlers.get(action)
        if handler is None:
            raise ApiError(
                404, f"no action {action!r} for knowledge bases"
            )
        _require(request, "POST")
        entry.count(action)
        return await handler(entry, request)

    # -- endpoints ----------------------------------------------------------------

    def _health(self, request: Request) -> Response:
        _require(request, "GET")
        return json_response(
            {
                "status": "ok",
                "kbs": self.registry.names(),
                "uptime_s": self.registry.uptime_seconds,
            }
        )

    async def _query(self, entry: HostedKB, request: Request) -> Response:
        payload = request.json()
        text = payload.get("query")
        if not isinstance(text, str) or not text.strip():
            raise ApiError(
                400, 'body must carry a non-empty "query" string'
            )
        answer, fingerprint = await entry.query(text)
        return json_response(
            {
                "kb": entry.name,
                "query": text,
                "answer": answer,
                "fingerprint": fingerprint,
            }
        )

    async def _batch(self, entry: HostedKB, request: Request) -> Response:
        payload = request.json()
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ApiError(
                400, 'body must carry a non-empty "queries" list'
            )
        if not all(isinstance(q, str) for q in queries):
            raise ApiError(400, "every query must be a string")
        answers, fingerprint = await entry.batch(queries)
        return json_response(
            {
                "kb": entry.name,
                "answers": answers,
                "fingerprint": fingerprint,
            }
        )

    async def _mpe(self, entry: HostedKB, request: Request) -> Response:
        payload = request.json()
        given = payload.get("given", {})
        if given is None:
            given = {}
        if not isinstance(given, dict):
            raise ApiError(400, '"given" must be an object of evidence')
        labels, probability, fingerprint = await entry.mpe(given)
        return json_response(
            {
                "kb": entry.name,
                "assignment": labels,
                "probability": probability,
                "given": given,
                "fingerprint": fingerprint,
            }
        )

    async def _explain(self, entry: HostedKB, request: Request) -> Response:
        payload = request.json()
        target = payload.get("target")
        given = payload.get("given")
        if not isinstance(target, dict) or not target:
            raise ApiError(
                400, 'body must carry a non-empty "target" object'
            )
        if not isinstance(given, dict) or not given:
            raise ApiError(
                400,
                'body must carry a non-empty "given" object '
                "(explanations are for conditional queries)",
            )
        explanation = await entry.explain(target, given)
        influences = [
            {
                "attributes": list(influence.key[0]),
                "values": [int(v) for v in influence.key[1]],
                "answer_without": influence.answer_without,
                "swing": influence.swing,
            }
            for influence in explanation.ranked()
        ]
        return json_response(
            {
                "kb": entry.name,
                "target": explanation.target,
                "given": explanation.given,
                "answer": explanation.answer,
                "independence_answer": explanation.independence_answer,
                "total_shift": explanation.total_shift,
                "influences": influences,
                "fingerprint": entry.fingerprint(),
            }
        )

    async def _update(self, entry: HostedKB, request: Request) -> Response:
        payload = request.json()
        rows = payload.get("rows")
        samples = payload.get("samples")
        if rows is not None and not isinstance(rows, list):
            raise ApiError(400, '"rows" must be a list of records')
        if samples is not None and not isinstance(samples, list):
            raise ApiError(400, '"samples" must be a list of value lists')
        if not rows and not samples:
            raise ApiError(
                400,
                'update body must carry "rows" (list of '
                '{attribute: label} records) and/or "samples" '
                "(list of value sequences)",
            )
        result = await entry.update(rows=rows, samples=samples)
        return json_response(result)


def _segments(path: str) -> list[str]:
    """Path → non-empty segments, query string stripped."""
    return [part for part in path.split("?", 1)[0].split("/") if part]


def _require(request: Request, method: str) -> None:
    if request.method != method:
        raise ApiError(
            405,
            f"{request.path} accepts {method}, not {request.method}",
            kind="MethodNotAllowed",
        )
