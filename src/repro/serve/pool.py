"""Session pools: checkout/checkin of warm QuerySessions per model revision.

Handlers run blocking evaluation (``session.batch``, ``most_probable``)
on executor threads, and :class:`~repro.api.session.QuerySession` is not
thread-safe — so each concurrent evaluation checks a session out, uses it
exclusively, and checks it back in warm (plan cache, marginal LRU,
backend artifact intact) for the next request.

A pool is bound to one model revision.  On hot-swap the registry builds a
fresh pool for the new model and *retires* the old one: idle sessions are
closed immediately, and sessions still out serving in-flight requests are
closed at checkin instead of being recycled — which is what reaps
process-backed sessions (``session_workers > 1``) without yanking a model
out from under a running request.
"""

from __future__ import annotations

import threading

from repro.api.session import QuerySession
from repro.exceptions import DataError
from repro.maxent.model import MaxEntModel

__all__ = ["SessionPool"]


class SessionPool:
    """A bounded pool of :class:`QuerySession` objects for one model.

    Parameters
    ----------
    model:
        The model revision every pooled session serves.
    backend / cache_size / session_workers / worker_addresses:
        Passed through to :class:`QuerySession` (``session_workers`` maps
        to its ``max_workers`` — process-backed batch sharding inside one
        session; ``worker_addresses`` shards batches across remote
        ``repro worker`` daemons over TCP instead).
    size:
        Retained-session cap.  Checkout never blocks: when the idle list
        is empty a fresh session is built, and checkin closes overflow
        beyond ``size`` instead of retaining it.
    """

    def __init__(
        self,
        model: MaxEntModel,
        backend: str = "auto",
        cache_size: int | None = None,
        size: int = 4,
        session_workers: int = 1,
        worker_addresses=(),
    ):
        if size < 1:
            raise DataError(f"pool size must be >= 1, got {size}")
        self._model = model
        self._backend = backend
        self._cache_size = cache_size
        self._session_workers = int(session_workers)
        self._worker_addresses = tuple(worker_addresses or ())
        self.size = int(size)
        self._idle: list[QuerySession] = []
        self._lock = threading.Lock()
        self._retired = False
        self._created = 0
        self._outstanding = 0

    @property
    def model(self) -> MaxEntModel:
        return self._model

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def outstanding(self) -> int:
        """Sessions currently checked out."""
        return self._outstanding

    def _build(self) -> QuerySession:
        kwargs = {
            "backend": self._backend,
            "max_workers": self._session_workers,
            "worker_addresses": self._worker_addresses,
        }
        if self._cache_size is not None:
            kwargs["cache_size"] = self._cache_size
        return QuerySession(self._model, **kwargs)

    def checkout(self) -> QuerySession:
        """Borrow a session (exclusive use until :meth:`checkin`)."""
        with self._lock:
            if self._retired:
                raise DataError("session pool is retired")
            if self._idle:
                session = self._idle.pop()
            else:
                session = None
            self._outstanding += 1
        if session is None:
            session = self._build()
            with self._lock:
                self._created += 1
        return session

    def checkin(self, session: QuerySession) -> None:
        """Return a borrowed session; retired/overflow sessions close."""
        with self._lock:
            self._outstanding = max(0, self._outstanding - 1)
            recycle = (
                not self._retired and len(self._idle) < self.size
            )
            if recycle:
                self._idle.append(session)
        if not recycle:
            session.close()

    def run(self, fn):
        """Checkout → ``fn(session)`` → checkin, exception-safe."""
        session = self.checkout()
        try:
            return fn(session)
        finally:
            self.checkin(session)

    def retire(self) -> None:
        """Close idle sessions now, outstanding ones at checkin; idempotent.

        After retirement the pool refuses checkouts, so no new request can
        land on the superseded model revision.
        """
        with self._lock:
            self._retired = True
            idle, self._idle = self._idle, []
        for session in idle:
            session.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": self.size,
                "idle": len(self._idle),
                "outstanding": self._outstanding,
                "created": self._created,
                "retired": self._retired,
                "session_workers": self._session_workers,
                "worker_addresses": list(self._worker_addresses),
            }

    def __repr__(self) -> str:
        state = "retired" if self._retired else "active"
        return (
            f"SessionPool(size={self.size}, idle={len(self._idle)}, "
            f"outstanding={self._outstanding}, {state})"
        )
