"""A blocking client for the serving API.

Tests, benchmarks, and demos need to drive a live server from ordinary
synchronous code — and the conformance suite needs a client that does
*no* numeric processing of its own, so a served probability arrives as
the bit-identical binary64 the server computed.  :class:`ServeClient`
wraps ``http.client`` (keep-alive, JSON bodies) and a raw-socket
WebSocket subscriber built on the same frame codec as the server.

Server-side error envelopes re-raise as :class:`ServedError`, carrying
the typed payload (``status``, ``kind``, message) so callers can assert
on the error taxonomy without string-scraping.
"""

from __future__ import annotations

import base64
import json
import os
import socket
import struct
from http.client import HTTPConnection

from repro.exceptions import DataError, ReproError
from repro.serve.websocket import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    accept_key,
    encode_frame,
    parse_frame_header,
    unmask,
)

__all__ = ["ServeClient", "ServedError", "Subscription"]


class ServedError(ReproError):
    """A typed error envelope returned by the server."""

    def __init__(self, status: int, kind: str, message: str):
        super().__init__(message)
        self.status = status
        self.kind = kind

    def __repr__(self) -> str:
        return (
            f"ServedError(status={self.status}, kind={self.kind!r}, "
            f"message={str(self)!r})"
        )


class ServeClient:
    """Blocking JSON client for one server; reuses one keep-alive socket."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: HTTPConnection | None = None

    # -- plumbing -----------------------------------------------------------------

    def _conn(self) -> HTTPConnection:
        if self._connection is None:
            self._connection = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def request(self, method: str, path: str, payload=None) -> dict:
        """One round trip; raises :class:`ServedError` on an envelope."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection = self._conn()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
        except (ConnectionError, socket.timeout, OSError):
            # A dropped keep-alive socket gets one fresh retry.
            self.close()
            connection = self._conn()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
        document = json.loads(data) if data else {}
        if response.status >= 400:
            error = document.get("error", {})
            raise ServedError(
                status=response.status,
                kind=error.get("type", "Unknown"),
                message=error.get("message", data.decode("utf-8", "replace")),
            )
        return document

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ----------------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/health")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def kbs(self) -> list[str]:
        return self.request("GET", "/kbs")["kbs"]

    def describe(self, kb: str) -> dict:
        return self.request("GET", f"/kb/{kb}")

    def kb_stats(self, kb: str) -> dict:
        return self.request("GET", f"/kb/{kb}/stats")

    def query(self, kb: str, text: str) -> dict:
        """Full response document for one query."""
        return self.request(
            "POST", f"/kb/{kb}/query", {"query": text}
        )

    def ask(self, kb: str, text: str) -> float:
        """Just the answer, as the exact served float."""
        return self.query(kb, text)["answer"]

    def batch(self, kb: str, queries: list[str]) -> dict:
        return self.request(
            "POST", f"/kb/{kb}/batch", {"queries": list(queries)}
        )

    def mpe(self, kb: str, given: dict | None = None) -> dict:
        return self.request(
            "POST", f"/kb/{kb}/mpe", {"given": given or {}}
        )

    def explain(self, kb: str, target: dict, given: dict) -> dict:
        return self.request(
            "POST",
            f"/kb/{kb}/explain",
            {"target": target, "given": given},
        )

    def update(
        self,
        kb: str,
        rows: list[dict] | None = None,
        samples: list | None = None,
    ) -> dict:
        payload: dict = {}
        if rows is not None:
            payload["rows"] = rows
        if samples is not None:
            payload["samples"] = samples
        return self.request("POST", f"/kb/{kb}/update", payload)

    def subscribe(self, kb: str, timeout: float = 30.0) -> "Subscription":
        """Open the WebSocket notification channel for ``kb``."""
        return Subscription(self.host, self.port, kb, timeout=timeout)


class Subscription:
    """A blocking WebSocket subscription to one knowledge base."""

    def __init__(
        self, host: str, port: int, kb: str, timeout: float = 30.0
    ):
        self.kb = kb
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._file = self._sock.makefile("rb")
        self._closed = False
        self._handshake(host, port, kb)

    def _handshake(self, host: str, port: int, kb: str) -> None:
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        request = (
            f"GET /kb/{kb}/subscribe HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Upgrade: websocket\r\n"
            f"Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            f"Sec-WebSocket-Version: 13\r\n"
            f"\r\n"
        )
        self._sock.sendall(request.encode("latin-1"))
        status_line = self._file.readline().decode("latin-1")
        headers = {}
        while True:
            line = self._file.readline().decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if " 101 " not in status_line:
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                body = self._file.read(length)
            self.close()
            try:
                error = json.loads(body).get("error", {})
            except (ValueError, AttributeError):
                error = {}
            raise ServedError(
                status=int(status_line.split(" ")[1])
                if len(status_line.split(" ")) > 1
                else 500,
                kind=error.get("type", "Unknown"),
                message=error.get(
                    "message", f"WebSocket upgrade refused: {status_line!r}"
                ),
            )
        expected = accept_key(key)
        if headers.get("sec-websocket-accept") != expected:
            self.close()
            raise DataError(
                "server returned a bad Sec-WebSocket-Accept key"
            )

    def _read_frame(self) -> tuple[int, bytes]:
        header = self._file.read(2)
        opcode, fin, masked, length_field = parse_frame_header(header)
        if length_field == 126:
            (length,) = struct.unpack(">H", self._file.read(2))
        elif length_field == 127:
            (length,) = struct.unpack(">Q", self._file.read(8))
        else:
            length = length_field
        key = self._file.read(4) if masked else b""
        payload = self._file.read(length) if length else b""
        if masked:
            payload = unmask(payload, key)
        return opcode, payload

    def recv(self, timeout: float | None = None) -> dict | None:
        """Next JSON notification; None once the server closes the channel.

        Raises ``socket.timeout`` (``TimeoutError``) if nothing arrives in
        ``timeout`` seconds.
        """
        if self._closed:
            return None
        if timeout is not None:
            self._sock.settimeout(timeout)
        while True:
            opcode, payload = self._read_frame()
            if opcode == OP_TEXT:
                return json.loads(payload.decode("utf-8"))
            if opcode == OP_PING:
                self._sock.sendall(
                    encode_frame(OP_PONG, payload, mask=True)
                )
                continue
            if opcode == OP_CLOSE:
                self.close()
                return None
            # Binary / pong frames are not part of the protocol; skip.

    def close(self) -> None:
        """Send a close frame (best-effort) and drop the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.sendall(encode_frame(OP_CLOSE, b"", mask=True))
        except OSError:
            pass
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
