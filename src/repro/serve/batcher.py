"""Request coalescing: many concurrent single queries, one batch call.

``POST /kb/{name}/query`` is the endpoint millions of independent clients
hit, one query each — exactly the shape :meth:`QuerySession.batch` was
built to amortize (shared marginals, one joint materialization).  The
:class:`MicroBatcher` bridges the two: concurrent submissions within a
bounded flush window are collected and evaluated as one batch, so under
load the per-query cost approaches the batch path's, while an idle
server adds at most ``flush_interval`` of latency to a lone request.

Mechanics
---------
- the first submission into an empty buffer arms a flush timer
  (``flush_interval`` seconds); everything submitted before it fires
  joins the same batch;
- reaching ``max_batch`` pending queries flushes immediately (bounded
  batch size beats a bounded window);
- ``flush_interval=0`` (or ``max_batch=1``) degenerates to per-request
  dispatch — the knob for latency-critical deployments;
- each flush calls the supplied async runner with the query list; the
  runner returns one result *per query*, where a result may be an
  exception instance — that query's future fails, the rest succeed
  (error isolation: one bad query cannot poison its batch-mates).

The batcher is event-loop-native and must be driven from a single loop;
the blocking work happens inside the runner (typically shipped to a
thread-pool executor by the caller).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.exceptions import DataError

__all__ = ["BatcherStats", "MicroBatcher"]

#: Default flush window: long enough to coalesce a concurrent burst,
#: short enough to be invisible next to network latency.
DEFAULT_FLUSH_INTERVAL = 0.002
DEFAULT_MAX_BATCH = 64


@dataclass
class BatcherStats:
    """Coalescing counters (monotonic since construction)."""

    submitted: int = 0
    flushes: int = 0
    coalesced_flushes: int = 0  # flushes that carried > 1 query
    max_batch_seen: int = 0
    errors: int = 0

    def to_dict(self) -> dict:
        mean = self.submitted / self.flushes if self.flushes else 0.0
        return {
            "submitted": self.submitted,
            "flushes": self.flushes,
            "coalesced_flushes": self.coalesced_flushes,
            "mean_batch": mean,
            "max_batch": self.max_batch_seen,
            "errors": self.errors,
        }


@dataclass
class _Pending:
    query: object
    future: asyncio.Future = field(repr=False)


class MicroBatcher:
    """Coalesces awaited submissions into bounded-latency batches.

    Parameters
    ----------
    runner:
        ``async (queries: list) -> list`` evaluating one flush.  Must
        return exactly one entry per query; an entry that is an
        ``Exception`` instance fails only its own submission.
    flush_interval:
        Seconds the first submission in a batch waits for company.
        0 flushes every submission immediately.
    max_batch:
        Flush as soon as this many queries are pending.
    """

    def __init__(
        self,
        runner,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        max_batch: int = DEFAULT_MAX_BATCH,
    ):
        if flush_interval < 0:
            raise DataError(
                f"flush_interval must be >= 0, got {flush_interval}"
            )
        if max_batch < 1:
            raise DataError(f"max_batch must be >= 1, got {max_batch}")
        self._runner = runner
        self.flush_interval = float(flush_interval)
        self.max_batch = int(max_batch)
        self.stats = BatcherStats()
        self._pending: list[_Pending] = []
        self._timer: asyncio.TimerHandle | None = None
        self._closed = False

    @property
    def pending(self) -> int:
        """Queries buffered and not yet flushed."""
        return len(self._pending)

    async def submit(self, query):
        """Queue one query; resolves with its result (or raises its error).

        Joins the current flush window, opening one if none is armed.
        """
        if self._closed:
            raise DataError("batcher is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append(_Pending(query, future))
        self.stats.submitted += 1
        if (
            len(self._pending) >= self.max_batch
            or self.flush_interval == 0.0
        ):
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.flush_interval, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.stats.flushes += 1
        if len(batch) > 1:
            self.stats.coalesced_flushes += 1
        self.stats.max_batch_seen = max(
            self.stats.max_batch_seen, len(batch)
        )
        asyncio.get_running_loop().create_task(self._run(batch))

    async def _run(self, batch: list[_Pending]) -> None:
        queries = [item.query for item in batch]
        try:
            results = await self._runner(queries)
        except BaseException as error:
            # A runner-level failure (pool died, server bug) fails the
            # whole flush — per-query isolation is the runner's job.
            self.stats.errors += len(batch)
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)
            return
        if len(results) != len(batch):
            error = DataError(
                f"batch runner returned {len(results)} results for "
                f"{len(batch)} queries"
            )
            self.stats.errors += len(batch)
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)
            return
        for item, result in zip(batch, results):
            if item.future.done():
                continue  # submitter went away (client disconnect)
            if isinstance(result, Exception):
                self.stats.errors += 1
                item.future.set_exception(result)
            else:
                item.future.set_result(result)

    async def drain(self) -> None:
        """Flush anything pending and wait for its futures to settle."""
        waiters = [item.future for item in self._pending]
        self._flush()
        if waiters:
            await asyncio.gather(*waiters, return_exceptions=True)

    def close(self) -> None:
        """Reject new submissions; pending ones still complete."""
        self._closed = True

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(window={self.flush_interval * 1e3:.1f}ms, "
            f"max_batch={self.max_batch}, pending={self.pending})"
        )
