"""repro.serve — the async network serving layer.

Hosts named knowledge bases behind an asyncio HTTP + WebSocket API with
request coalescing, warm session pools, and atomic hot-swap on update.
Served answers are bit-identical to in-process ``kb.query()``.

Quick start::

    from repro.serve import ServeClient, ServeConfig, serve_in_thread

    with serve_in_thread({"paper": kb}) as handle:
        client = ServeClient(handle.host, handle.port)
        answer = client.ask("paper", "P(CANCER=yes | SMOKING=smoker)")
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.client import ServeClient, ServedError, Subscription
from repro.serve.errors import ApiError
from repro.serve.pool import SessionPool
from repro.serve.registry import (
    HostedKB,
    KnowledgeBaseRegistry,
    ServeConfig,
)
from repro.serve.server import ReproServer, ServerHandle, serve_in_thread

__all__ = [
    "ApiError",
    "BatcherStats",
    "HostedKB",
    "KnowledgeBaseRegistry",
    "MicroBatcher",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServedError",
    "ServerHandle",
    "SessionPool",
    "Subscription",
]
