"""Minimal HTTP/1.1 framing over asyncio streams — the transport seam.

The serving layer deliberately avoids a web framework: tier-1 tests must
stay dependency-light, and the request shapes the API needs (small JSON
bodies, keep-alive, a WebSocket upgrade) fit in a few hundred lines of
stdlib code.  Everything HTTP-specific lives here, behind two plain data
classes — :class:`Request` in, :class:`Response` out — so the application
layer (:mod:`repro.serve.app`) never touches sockets and an alternative
transport (a real framework, a unix socket, an in-process test harness)
only has to produce and consume the same two shapes.

Framing supported: request line + headers + optional ``Content-Length``
body (no chunked uploads — the API never needs them), ``HTTP/1.1``
keep-alive with ``Connection: close`` honored both ways, and 100-continue
ignored as the stdlib client never sends it unprompted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.serve.errors import ApiError

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "Request",
    "Response",
    "json_response",
    "read_request",
    "render_response",
]

#: Upload cap: update payloads are rows of labelled records, and even a
#: generous streaming batch fits well under this.  Oversized requests get
#: a typed 413 instead of an OOM.
MAX_BODY_BYTES = 64 * 1024 * 1024
#: Header-block cap (request line + all headers).
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.http_version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )

    def json(self):
        """Decode the body as JSON; typed 400 on garbage."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ApiError(
                400, f"request body is not valid JSON: {error}"
            ) from None


@dataclass
class Response:
    """One HTTP response, rendered by :func:`render_response`."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)
    keep_alive: bool = True


def json_response(payload, status: int = 200) -> Response:
    """A Response carrying a JSON document.

    ``json.dumps`` round-trips Python floats exactly (shortest-repr), so
    a served probability decodes to the bit-identical binary64 the
    session computed — the property the conformance tests pin down.
    """
    return Response(
        status=status, body=json.dumps(payload).encode("utf-8")
    )


async def read_request(reader) -> Request | None:
    """Parse one request from the stream; None on a clean EOF.

    Raises :class:`ApiError` on malformed framing (the connection handler
    answers with the envelope and closes).
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except EOFError:
        return None
    except Exception as error:  # IncompleteReadError, LimitOverrunError
        name = type(error).__name__
        if name == "IncompleteReadError":
            if not getattr(error, "partial", b""):
                return None
            raise ApiError(400, "truncated HTTP request") from None
        if name == "LimitOverrunError":
            raise ApiError(
                413, "request header block too large"
            ) from None
        raise
    if len(header_block) > MAX_HEADER_BYTES:
        raise ApiError(413, "request header block too large")
    try:
        text = header_block.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, path, version = request_line.split(" ", 2)
    except ValueError:
        raise ApiError(400, "malformed HTTP request line") from None
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ApiError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ApiError(
                400, f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise ApiError(400, f"bad Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise ApiError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        if length:
            body = await reader.readexactly(length)
    return Request(
        method=method.upper(),
        path=path,
        headers=headers,
        body=body,
        http_version=version.strip(),
    )


def render_response(response: Response) -> bytes:
    """Serialize a Response to wire bytes."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers.setdefault("content-type", response.content_type)
    headers.setdefault("content-length", str(len(response.body)))
    headers.setdefault(
        "connection", "keep-alive" if response.keep_alive else "close"
    )
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + response.body
