"""The asyncio network server and a thread-hosted harness.

:class:`ReproServer` owns the listening socket: it accepts connections,
frames HTTP requests via :mod:`repro.serve.transport`, hands them to the
:class:`~repro.serve.app.ServeApp`, and speaks the WebSocket
subscription protocol for ``/kb/{name}/subscribe``.  Graceful shutdown
closes the listener, tears down open connections, and retires every
session pool through the registry (reaping worker processes).

:func:`serve_in_thread` hosts a server on a background event-loop thread
and yields a handle with the bound port — the harness the tests,
benchmarks, and :mod:`examples.serving_demo` drive a live server with
from ordinary blocking code.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.exceptions import DataError, ReproError
from repro.serve.app import ServeApp
from repro.serve.errors import ApiError, error_body
from repro.serve.registry import (
    HostedKB,
    KnowledgeBaseRegistry,
    ServeConfig,
)
from repro.serve.transport import (
    Response,
    read_request,
    render_response,
)
from repro.serve.websocket import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    accept_key,
    encode_frame,
    read_frame,
)

__all__ = ["ReproServer", "ServerHandle", "serve_in_thread"]


class ReproServer:
    """Serves a :class:`KnowledgeBaseRegistry` over HTTP + WebSocket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: ServeConfig | None = None,
        registry: KnowledgeBaseRegistry | None = None,
        store=None,
    ):
        self.host = host
        self.port = port  # 0 = ephemeral; replaced with the bound port
        self.registry = registry or KnowledgeBaseRegistry(
            config, store=store
        )
        self.app = ServeApp(self.registry)
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    def add(
        self, name: str, kb: ProbabilisticKnowledgeBase
    ) -> HostedKB:
        """Host ``kb`` under ``name``."""
        return self.registry.add(name, kb)

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise DataError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener and every connection; retire all pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        # Executor shutdown joins worker threads; keep it off the loop.
        await asyncio.get_running_loop().run_in_executor(
            None, self.registry.close
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ReproError as error:
                    await self._write(
                        writer, _error_response(error, keep_alive=False)
                    )
                    break
                if request is None:
                    break
                if request.wants_websocket:
                    await self._handle_websocket(request, reader, writer)
                    break
                response = await self.app.handle(request)
                response.keep_alive = (
                    response.keep_alive and request.keep_alive
                )
                await self._write(writer, response)
                if not response.keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _write(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        writer.write(render_response(response))
        await writer.drain()

    # -- websocket subscriptions --------------------------------------------------

    async def _handle_websocket(
        self,
        request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            entry = self.app.subscription_entry(request)
        except ReproError as error:
            await self._write(
                writer, _error_response(error, keep_alive=False)
            )
            return
        client_key = request.headers.get("sec-websocket-key")
        if not client_key:
            await self._write(
                writer,
                _error_response(
                    ApiError(400, "missing Sec-WebSocket-Key"),
                    keep_alive=False,
                ),
            )
            return
        writer.write(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"Upgrade: websocket\r\n"
            b"Connection: Upgrade\r\n"
            b"Sec-WebSocket-Accept: "
            + accept_key(client_key).encode("latin-1")
            + b"\r\n\r\n"
        )
        await writer.drain()
        entry.count("subscribe")
        queue = entry.subscribe()
        try:
            await self._send_json(
                writer,
                {
                    "type": "hello",
                    "kb": entry.name,
                    "revision": entry.revision_number,
                    "fingerprint": entry.fingerprint(),
                },
            )
            await self._pump_subscription(reader, writer, queue)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            ReproError,
        ):
            pass
        finally:
            entry.unsubscribe(queue)

    async def _send_json(
        self, writer: asyncio.StreamWriter, payload: dict
    ) -> None:
        writer.write(
            encode_frame(OP_TEXT, json.dumps(payload).encode("utf-8"))
        )
        await writer.drain()

    async def _pump_subscription(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        queue: asyncio.Queue,
    ) -> None:
        """Forward notifications until the peer closes or disconnects."""

        async def notify() -> None:
            while True:
                await self._send_json(writer, await queue.get())

        async def listen() -> None:
            while True:
                opcode, payload = await read_frame(reader)
                if opcode == OP_CLOSE:
                    writer.write(encode_frame(OP_CLOSE, payload))
                    await writer.drain()
                    return
                if opcode == OP_PING:
                    writer.write(encode_frame(OP_PONG, payload))
                    await writer.drain()
                # Text/pong frames from subscribers are ignored.

        tasks = [
            asyncio.ensure_future(notify()),
            asyncio.ensure_future(listen()),
        ]
        try:
            done, pending = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                with contextlib.suppress(Exception):
                    task.result()
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)


def _error_response(error: Exception, keep_alive: bool) -> Response:
    status, body = error_body(error)
    return Response(status=status, body=body, keep_alive=keep_alive)


class ServerHandle:
    """A running server on a background thread; safe to drive blockingly."""

    def __init__(
        self,
        server: ReproServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        return self.server.host, self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join its thread; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    kbs: dict[str, ProbabilisticKnowledgeBase],
    config: ServeConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    store=None,
) -> ServerHandle:
    """Start a server on a daemon event-loop thread; returns its handle.

    The handle's ``port`` is the bound (possibly ephemeral) port.  Use as
    a context manager for deterministic teardown::

        with serve_in_thread({"paper": kb}) as handle:
            client = ServeClient(handle.host, handle.port)
            ...

    With ``store`` (a :class:`~repro.store.KBStore`) the server is
    durable: the ``kbs`` passed in are persisted, every stored knowledge
    base not in ``kbs`` is hosted at its latest persisted revision, and
    hosted updates write through the store — so a server restarted on
    the same store resumes exactly where the previous one stopped.
    """
    started = threading.Event()
    box: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = ReproServer(
            host=host, port=port, config=config, store=store
        )
        try:
            for name, kb in kbs.items():
                server.add(name, kb)
            if store is not None:
                server.registry.add_all_from_store()
            loop.run_until_complete(server.start())
        except BaseException as error:  # surface startup failures
            box["error"] = error
            started.set()
            loop.close()
            return
        box["server"] = server
        box["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=run, name="repro-serve-loop", daemon=True
    )
    thread.start()
    if not started.wait(30.0):
        raise DataError("server failed to start within 30s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["server"], box["loop"], thread)
