"""The serving registry: named knowledge bases with atomic hot-swap.

A :class:`KnowledgeBaseRegistry` hosts N named
:class:`~repro.core.knowledge_base.ProbabilisticKnowledgeBase` objects,
each wrapped in a :class:`HostedKB` that owns what serving adds on top of
the library:

- a :class:`~repro.serve.pool.SessionPool` of warm
  :class:`~repro.api.session.QuerySession` objects (blocking evaluation
  runs on the registry's thread-pool executor, one session checked out
  per concurrent call);
- a :class:`~repro.serve.batcher.MicroBatcher` coalescing concurrent
  single-query requests into ``session.batch`` calls;
- subscriber queues feeding WebSocket revision notifications;
- per-endpoint counters for ``/stats``.

Hot-swap semantics
------------------
``POST /update`` must not mutate the served model in place: executor
threads may be reading its tensors mid-request.  Instead the update runs
on a *clone* (an exact float-preserving ``to_dict``/``from_dict`` round
trip of the knowledge base, whose warm rediscovery is therefore
bit-identical to updating the original), and the registry entry is
swapped atomically on the event loop: in-flight requests finish on the
session pool — and model fingerprint — they checked out, new requests
see the new revision, the superseded pool is retired (idle sessions
closed now, outstanding ones at checkin — no leaked worker processes),
and every subscriber gets a revision-change notification.

A knowledge base updated *in place* from outside the server (e.g. an
embedded :class:`~repro.lifecycle.LiveKnowledgeBase` absorbing a stream)
still propagates: pooled sessions detect the model fingerprint change
exactly as in-process sessions do.

Durability
----------
With a :class:`~repro.store.KBStore` attached, the registry persists
every hosted knowledge base on :meth:`KnowledgeBaseRegistry.add` and
every ``POST /update`` revision *before* the hot-swap and subscriber
notification — a notified subscriber can always read the revision it
was told about from the store, and a restarted server
(:meth:`KnowledgeBaseRegistry.add_from_store`) resumes at the latest
persisted revision with its full history.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.explain import explain
from repro.data.streaming import TableBuilder
from repro.exceptions import DataError, ReproError
from repro.serve.batcher import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_BATCH,
    MicroBatcher,
)
from repro.serve.errors import ApiError
from repro.serve.pool import SessionPool

__all__ = ["HostedKB", "KnowledgeBaseRegistry", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Serving knobs, shared by every hosted knowledge base.

    Attributes
    ----------
    flush_interval:
        Micro-batcher flush window in seconds (0 = no coalescing).
    max_batch:
        Coalesced-batch size cap (reaching it flushes immediately).
    pool_size:
        Retained sessions per knowledge base (and the default executor
        thread count, so a checkout never has to block on the pool).
    backend:
        Inference backend for pooled sessions.
    cache_size:
        Session cache bound; None for the session default.
    session_workers:
        ``max_workers`` for pooled sessions — worker *processes* behind
        each session's batch path.
    worker_addresses:
        ``HOST:PORT`` addresses of remote ``repro worker`` daemons; a
        non-empty tuple makes every pooled session shard its batches
        over TCP (``repro serve --workers-remote``), fanning served
        traffic out across hosts.  Machine-local — never stored with a
        knowledge base.
    executor_threads:
        Thread-pool size for blocking evaluation; None sizes it to
        ``pool_size`` + 2 (updates and stats never starve queries).
    """

    flush_interval: float = DEFAULT_FLUSH_INTERVAL
    max_batch: int = DEFAULT_MAX_BATCH
    pool_size: int = 4
    backend: str = "auto"
    cache_size: int | None = None
    session_workers: int = 1
    worker_addresses: tuple[str, ...] = ()
    executor_threads: int | None = None

    def __post_init__(self) -> None:
        if self.flush_interval < 0:
            raise DataError(
                f"flush_interval must be >= 0, got {self.flush_interval}"
            )
        if self.max_batch < 1:
            raise DataError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.pool_size < 1:
            raise DataError(
                f"pool_size must be >= 1, got {self.pool_size}"
            )
        if self.session_workers < 1:
            raise DataError(
                f"session_workers must be >= 1, got {self.session_workers}"
            )
        if not isinstance(self.worker_addresses, tuple):
            object.__setattr__(
                self, "worker_addresses", tuple(self.worker_addresses)
            )


class HostedKB:
    """One named knowledge base and its serving machinery."""

    def __init__(
        self,
        name: str,
        kb: ProbabilisticKnowledgeBase,
        config: ServeConfig,
        executor: ThreadPoolExecutor,
        store=None,
    ):
        self.name = name
        self.kb = kb
        self.config = config
        self._executor = executor
        self._store = store
        self.pool = self._build_pool(kb)
        self.batcher = MicroBatcher(
            self._run_coalesced,
            flush_interval=config.flush_interval,
            max_batch=config.max_batch,
        )
        self._update_lock = asyncio.Lock()
        self.subscribers: set[asyncio.Queue] = set()
        self.counters: dict[str, int] = {}
        self.updates_served = 0

    def _build_pool(self, kb: ProbabilisticKnowledgeBase) -> SessionPool:
        return SessionPool(
            kb.model,
            backend=self.config.backend,
            cache_size=self.config.cache_size,
            size=self.config.pool_size,
            session_workers=self.config.session_workers,
            worker_addresses=self.config.worker_addresses,
        )

    # -- bookkeeping --------------------------------------------------------------

    def count(self, endpoint: str) -> None:
        self.counters[endpoint] = self.counters.get(endpoint, 0) + 1

    @property
    def revision_number(self) -> int:
        return self.kb.revisions[-1].number if self.kb.revisions else 0

    def fingerprint(self) -> int:
        return self.kb.model.fingerprint()

    def describe(self) -> dict:
        """The ``GET /kb/{name}`` document: schema, size, revision."""
        schema = self.kb.schema
        return {
            "name": self.name,
            "attributes": {
                name: list(schema.attribute(name).values)
                for name in schema.names
            },
            "sample_size": self.kb.sample_size,
            "revision": self.revision_number,
            "fingerprint": self.fingerprint(),
            "constraints": len(self.kb.model.cell_factors),
            "can_update": self.kb.can_update,
        }

    def stats(self) -> dict:
        return {
            "name": self.name,
            "revision": self.revision_number,
            "updates": self.updates_served,
            "requests": dict(self.counters),
            "batcher": self.batcher.stats.to_dict(),
            "pool": self.pool.stats(),
        }

    # -- evaluation ---------------------------------------------------------------

    async def _in_executor(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _run_coalesced(self, queries: list) -> list:
        """Micro-batcher runner: one flush on one pooled session.

        The pool is captured at flush time, so a flush racing a hot-swap
        evaluates the whole batch against a single model revision — and
        each result carries that revision's fingerprint, not whatever
        ``self.kb`` points at by the time the response renders.
        Error isolation: the shared batch fast path is attempted first;
        if any query in the batch is bad, each query is re-evaluated
        alone so only the offender fails.  Per-query results are
        bit-identical either way (same session, same marginal
        arithmetic).
        """
        pool = self.pool
        return await self._in_executor(
            _evaluate_isolated, pool, list(queries)
        )

    async def query(self, text: str) -> tuple[float, int]:
        """One coalesced single-query evaluation: (answer, fingerprint)."""
        return await self.batcher.submit(text)

    async def batch(self, queries: list) -> tuple[list[float], int]:
        """An explicit client batch: evaluated as one unit, not coalesced.

        Matches in-process ``kb.query_many`` semantics — a bad query
        fails the whole batch with its typed error.
        """
        pool = self.pool

        def run():
            answers = pool.run(lambda session: session.batch(queries))
            return answers, pool.model.fingerprint()

        return await self._in_executor(run)

    async def mpe(self, given: dict | None):
        pool = self.pool

        def run():
            labels, probability = pool.run(
                lambda session: session.most_probable(given or None)
            )
            return labels, probability, pool.model.fingerprint()

        return await self._in_executor(run)

    async def explain(self, target: dict, given: dict):
        model = self.kb.model
        return await self._in_executor(explain, model, target, given)

    # -- hot-swap -----------------------------------------------------------------

    def _apply_update(self, rows, samples):
        """Executor side of an update: tally, clone, warm-rediscover.

        Runs under the update lock, so ``self.kb`` is stable for the
        duration even though this executes off the event loop.
        """
        builder = TableBuilder(self.kb.schema)
        for record in rows or []:
            builder.add_record(record)
        for sample in samples or []:
            builder.add_sample(sample)
        if builder.total == 0:
            raise ApiError(
                422, "update carried no observations (rows/samples empty)"
            )
        if not self.kb.can_update:
            raise ApiError(
                422,
                f"knowledge base {self.name!r} has no discovery audit "
                f"trail and cannot absorb updates",
            )
        clone = ProbabilisticKnowledgeBase.from_dict(self.kb.to_dict())
        revision = clone.update(builder.snapshot())
        return clone, revision

    async def update(self, rows=None, samples=None) -> dict:
        """Absorb new observations and atomically swap the served model.

        With a store attached, the new revision is persisted *before*
        the swap and the subscriber notification: if persistence fails
        the request errors and the served model is unchanged, and a
        subscriber told about revision N can always load revision N.
        """
        async with self._update_lock:
            clone, revision = await self._in_executor(
                self._apply_update, rows, samples
            )
            if self._store is not None:
                await self._in_executor(
                    self._store.save, self.name, clone
                )
            # Swap on the event loop: handlers observe either the old
            # entry state or the new one, never a mixture.
            old_pool = self.pool
            self.kb = clone
            self.pool = self._build_pool(clone)
            old_pool.retire()
            self.updates_served += 1
        payload = {
            "type": "revision",
            "kb": self.name,
            "revision": revision.number,
            "mode": revision.mode,
            "sample_size": revision.sample_size,
            "added_samples": revision.added_samples,
            "constraints_added": len(revision.constraints_added),
            "constraints_dropped": len(revision.constraints_dropped),
            "fingerprint": self.fingerprint(),
        }
        self._notify(payload)
        return payload

    # -- subscriptions ------------------------------------------------------------

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self.subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        self.subscribers.discard(queue)

    def _notify(self, payload: dict) -> None:
        for queue in list(self.subscribers):
            queue.put_nowait(payload)

    # -- shutdown -----------------------------------------------------------------

    def close(self) -> None:
        """Stop coalescing and reap every pooled session; idempotent."""
        self.batcher.close()
        self.pool.retire()


def _evaluate_isolated(pool: SessionPool, queries: list) -> list:
    """One flush: shared batch fast path, per-query error isolation.

    Returns one entry per query — ``(answer, fingerprint)`` on success,
    the bare :class:`ReproError` on failure (the batcher maps exception
    entries to individual future failures).
    """
    fingerprint = pool.model.fingerprint()

    def run(session):
        try:
            answers = session.batch(queries)
        except ReproError:
            results: list = []
            for query in queries:
                try:
                    results.append((session.ask(query), fingerprint))
                except ReproError as error:
                    results.append(error)
            return results
        return [(answer, fingerprint) for answer in answers]

    return pool.run(run)


class KnowledgeBaseRegistry:
    """Named knowledge bases behind one executor; the app's data plane.

    ``store`` (a :class:`~repro.store.KBStore`) makes the registry
    durable: added knowledge bases are persisted immediately, hosted
    updates write their revision through the store before serving it,
    and :meth:`add_from_store` / :meth:`add_all_from_store` resume
    knowledge bases at their latest persisted revision after a restart.
    """

    def __init__(self, config: ServeConfig | None = None, store=None):
        self.config = config or ServeConfig()
        self.store = store
        threads = self.config.executor_threads
        if threads is None:
            threads = self.config.pool_size + 2
        self.executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-serve"
        )
        self._entries: dict[str, HostedKB] = {}
        self.started_at = time.time()
        self._closed = False

    def add(
        self, name: str, kb: ProbabilisticKnowledgeBase
    ) -> HostedKB:
        """Host a knowledge base under ``name``; rejects duplicates.

        With a store attached the knowledge base is persisted under
        ``name`` before it starts serving (a no-op when it was just
        loaded from that store).
        """
        if self._closed:
            raise DataError("registry is closed")
        if not name or "/" in name:
            raise DataError(
                f"knowledge base name {name!r} must be non-empty and "
                f"contain no '/'"
            )
        if name in self._entries:
            raise DataError(
                f"a knowledge base named {name!r} is already hosted"
            )
        if self.store is not None:
            self.store.save(name, kb)
        entry = HostedKB(
            name, kb, self.config, self.executor, store=self.store
        )
        self._entries[name] = entry
        return entry

    def add_from_store(self, name: str) -> HostedKB:
        """Host a stored knowledge base at its latest persisted revision."""
        if self.store is None:
            raise DataError(
                "this registry has no store attached; pass store= to "
                "KnowledgeBaseRegistry (or --store to 'repro serve')"
            )
        return self.add(name, self.store.load(name))

    def add_all_from_store(self) -> list[HostedKB]:
        """Host every stored knowledge base not already hosted."""
        if self.store is None:
            raise DataError(
                "this registry has no store attached; pass store= to "
                "KnowledgeBaseRegistry (or --store to 'repro serve')"
            )
        return [
            self.add_from_store(name)
            for name in self.store.names()
            if name not in self._entries
        ]

    def get(self, name: str) -> HostedKB:
        entry = self._entries.get(name)
        if entry is None:
            raise ApiError(
                404,
                f"no knowledge base named {name!r} "
                f"(hosted: {sorted(self._entries)})",
                kind="UnknownKnowledgeBase",
            )
        return entry

    def names(self) -> list[str]:
        return list(self._entries)

    def entries(self) -> list[HostedKB]:
        return list(self._entries.values())

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self.started_at

    def stats(self) -> dict:
        return {
            "uptime_s": self.uptime_seconds,
            "kbs": {
                name: entry.stats()
                for name, entry in self._entries.items()
            },
        }

    def close(self) -> None:
        """Retire every pool and stop the executor; idempotent."""
        if self._closed:
            return
        self._closed = True
        for entry in self._entries.values():
            entry.close()
        self.executor.shutdown(wait=True)

    def __enter__(self) -> "KnowledgeBaseRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"KnowledgeBaseRegistry({sorted(self._entries)})"
