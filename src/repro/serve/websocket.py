"""Minimal RFC 6455 WebSocket support: handshake + frame codec.

Just enough of the protocol for the serving layer's subscription channel
(and for the blocking client the tests and demos drive it with): the
HTTP upgrade handshake, unfragmented text/binary frames with the 7/16/64
bit length ladder, client-side masking, and ping/pong/close control
frames.  Fragmented messages and extensions are not needed by either end
and are rejected loudly rather than half-supported.

The codec is split into pure functions over bytes (shared by the asyncio
server and the synchronous client) plus one async reader, so both sides
frame traffic with the same code.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct

from repro.serve.errors import ApiError

__all__ = [
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "accept_key",
    "encode_frame",
    "parse_frame_header",
    "read_frame",
    "unmask",
]

#: RFC 6455 §1.3 handshake GUID.
_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Frame-size cap: subscription notifications are small JSON documents.
MAX_FRAME_BYTES = 1 * 1024 * 1024


def accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` value for a ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1(
        (client_key.strip() + _GUID).encode("latin-1")
    ).digest()
    return base64.b64encode(digest).decode("latin-1")


def encode_frame(
    opcode: int, payload: bytes, mask: bool = False
) -> bytes:
    """One final (FIN=1) frame; ``mask=True`` for client→server traffic."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = unmask(payload, key)  # XOR is its own inverse
    return bytes(header) + payload


def unmask(payload: bytes, key: bytes) -> bytes:
    """XOR ``payload`` with the 4-byte mask ``key``."""
    mask = (key * (len(payload) // 4 + 1))[: len(payload)]
    return bytes(a ^ b for a, b in zip(payload, mask))


def parse_frame_header(
    first_two: bytes,
) -> tuple[int, bool, bool, int]:
    """``(opcode, fin, masked, length_field)`` from a frame's first bytes.

    ``length_field`` is the raw 7-bit value: < 126 is the payload length
    itself, 126/127 announce a 16/64-bit extended length.
    """
    if len(first_two) != 2:
        raise ApiError(400, "truncated WebSocket frame header")
    b0, b1 = first_two
    fin = bool(b0 & 0x80)
    if b0 & 0x70:
        raise ApiError(400, "WebSocket extensions are not supported")
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    return opcode, fin, masked, b1 & 0x7F


async def read_frame(reader) -> tuple[int, bytes]:
    """Read one frame from an asyncio stream: ``(opcode, payload)``.

    Raises :class:`ApiError` on protocol violations; propagates
    ``IncompleteReadError`` when the peer vanishes mid-frame (the caller
    treats it as a disconnect).
    """
    opcode, fin, masked, length_field = parse_frame_header(
        await reader.readexactly(2)
    )
    if not fin:
        raise ApiError(400, "fragmented WebSocket frames not supported")
    if length_field == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length_field == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    else:
        length = length_field
    if length > MAX_FRAME_BYTES:
        raise ApiError(413, f"WebSocket frame of {length} bytes too large")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = unmask(payload, key)
    return opcode, payload
