"""Pluggable inference backends behind a common marginal protocol.

A backend answers one question — the normalized marginal over an attribute
subset — and everything else (conditionals, distributions, MPE) is derived
from it.  Two implementations ship:

- :class:`DenseBackend` materializes the joint tensor once, caches it, and
  answers marginals by axis sums.  Exact and fastest while the state space
  fits in memory (every experiment in the paper).
- :class:`EliminationBackend` runs the Appendix-B factored computation
  (variable elimination) and never builds the joint, so wide schemas stay
  tractable; the factor decomposition is cached across queries.

Both caches self-invalidate via :meth:`MaxEntModel.fingerprint`, so a model
mutated in place (e.g. mid-fit) never serves stale answers.

The registry makes backends pluggable: ``@register_backend`` on a subclass
adds it to :func:`available_backends`, and callers select by name — or pass
``"auto"`` to let :func:`select_backend` pick per-model based on the size of
the joint state space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from typing import ClassVar

import numpy as np

from repro.core.mpe import (
    most_probable_from_joint,
    most_probable_from_restricted,
)
from repro.exceptions import QueryError
from repro.maxent import elimination
from repro.maxent.model import MaxEntModel

AUTO = "auto"

# Above this many joint cells, "auto" switches from the dense tensor to
# Appendix-B elimination (the tensor build stops amortizing).
DENSE_CELL_LIMIT = 4096

_REGISTRY: dict[str, type["InferenceBackend"]] = {}


def register_backend(cls: type["InferenceBackend"]) -> type["InferenceBackend"]:
    """Class decorator adding a backend to the registry under ``cls.name``.

    Duplicate names are rejected — silently replacing a backend would
    swap the implementation behind every session (and the ``auto``
    selector) process-wide.  Call :func:`unregister_backend` first to
    replace one deliberately.
    """
    name = getattr(cls, "name", "")
    if not name or name == AUTO:
        raise ValueError(
            f"backend class {cls.__name__} needs a non-empty name "
            f"(and {AUTO!r} is reserved)"
        )
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(
            f"an inference backend named {name!r} is already registered "
            f"({_REGISTRY[name].__name__}); unregister it first to replace it"
        )
    _REGISTRY[name] = cls
    return cls


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (mainly for tests/plugins)."""
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def select_backend(model: MaxEntModel) -> str:
    """The ``auto`` policy: pick a backend name for this model.

    Dense evaluation wins while the joint state space is small; past
    ``DENSE_CELL_LIMIT`` cells the factored Appendix-B path takes over.
    """
    if model.schema.num_cells <= DENSE_CELL_LIMIT:
        return "dense"
    return "elimination"


def create_backend(name: str | None, model: MaxEntModel) -> "InferenceBackend":
    """Instantiate a backend for ``model`` by name (``"auto"`` selects)."""
    if name is None or name == AUTO:
        name = select_backend(model)
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise QueryError(
            f"unknown inference backend {name!r}; available: "
            f"{list(available_backends())} (or {AUTO!r})"
        ) from None
    return cls(model)


class InferenceBackend(ABC):
    """Evaluates marginals of a fitted model; everything else is ratios.

    Subclasses implement :meth:`marginal`; the base class derives the full
    joint and MPE queries from it.  Instances are bound to one model and may
    cache aggressively — :meth:`invalidate` drops all caches, and
    implementations are expected to self-invalidate when the model's
    :meth:`~repro.maxent.model.MaxEntModel.fingerprint` changes.
    """

    name: ClassVar[str] = ""

    def __init__(self, model: MaxEntModel):
        self.model = model

    @abstractmethod
    def marginal(self, names: Sequence[str]) -> np.ndarray:
        """Normalized marginal over ``names`` (axes in schema order).

        The returned array may be a shared, read-only cache entry
        (:class:`DenseBackend` hands out frozen arrays); callers that
        want to mutate the result must copy it first.
        """

    def joint(self) -> np.ndarray:
        """Dense normalized joint tensor (may be expensive for wide schemas)."""
        return self.marginal(self.model.schema.names)

    def invalidate(self) -> None:
        """Drop any cached state (call after mutating the model in place)."""

    def most_probable(
        self, given: Mapping[str, int] | None = None
    ) -> tuple[dict[str, str], float]:
        """Most probable complete assignment consistent with the evidence.

        ``given`` maps attribute names to value *indices*; returns
        ``(assignment labels, conditional probability)``.
        """
        given = dict(given or {})
        return most_probable_from_joint(
            self.model.schema, self.joint(), given
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.model!r})"


@register_backend
class DenseBackend(InferenceBackend):
    """Joint-tensor evaluation; the tensor is built once and cached.

    Subset marginals are additionally kept in a small LRU cache keyed by
    the canonical subset, so direct backend callers (outside
    :class:`~repro.api.session.QuerySession`, which layers its own cache)
    stop re-summing the frozen joint on every repeated query.  Cached
    arrays are frozen — they are handed out by reference — and the whole
    cache drops whenever the model's fingerprint changes.
    """

    name = "dense"

    #: Max number of subset marginals retained (LRU eviction beyond this).
    MARGINAL_CACHE_SIZE = 64

    def __init__(self, model: MaxEntModel):
        super().__init__(model)
        self._joint: np.ndarray | None = None
        self._fingerprint: int | None = None
        self._marginals: OrderedDict[tuple[str, ...], np.ndarray] = (
            OrderedDict()
        )

    def _tensor(self) -> np.ndarray:
        fingerprint = self.model.fingerprint()
        if self._joint is None or fingerprint != self._fingerprint:
            joint = self.model.joint()
            # The cache entry is handed out by reference (joint() and
            # zero-axis marginals); freeze it so callers can't corrupt it.
            joint.flags.writeable = False
            self._joint = joint
            self._fingerprint = fingerprint
            self._marginals.clear()
        return self._joint

    def joint(self) -> np.ndarray:
        """The full joint tensor (read-only, cached until invalidated)."""
        return self._tensor()

    def marginal(self, names: Sequence[str]) -> np.ndarray:
        """Marginal over ``names``, served from the LRU marginal cache."""
        schema = self.model.schema
        ordered = schema.canonical_subset(names)
        # _tensor() first: it also drops stale marginals on model change.
        tensor = self._tensor()
        cached = self._marginals.get(ordered)
        if cached is not None:
            self._marginals.move_to_end(ordered)
            return cached
        drop = schema.drop_axes(ordered)
        if not drop:
            return tensor
        marginal = tensor.sum(axis=drop)
        marginal.flags.writeable = False
        self._marginals[ordered] = marginal
        if len(self._marginals) > self.MARGINAL_CACHE_SIZE:
            self._marginals.popitem(last=False)
        return marginal

    def invalidate(self) -> None:
        """Drop the cached joint and marginals (next call rebuilds)."""
        self._joint = None
        self._fingerprint = None
        self._marginals.clear()


@register_backend
class EliminationBackend(InferenceBackend):
    """Appendix-B factored evaluation; never materializes the joint.

    The model's factor decomposition is computed once and reused across
    queries — each marginal still runs its own elimination, but skips the
    per-call factor rebuild.
    """

    name = "elimination"

    def __init__(self, model: MaxEntModel):
        super().__init__(model)
        self._factors: list[elimination.Factor] | None = None
        self._fingerprint: int | None = None

    def _factor_list(self) -> list[elimination.Factor]:
        fingerprint = self.model.fingerprint()
        if self._factors is None or fingerprint != self._fingerprint:
            self._factors = elimination.model_factors(self.model)
            self._fingerprint = fingerprint
        return self._factors

    def marginal(self, names: Sequence[str]) -> np.ndarray:
        """Marginal over ``names`` by factored variable elimination."""
        return elimination.marginal(
            self.model, names, factors=self._factor_list()
        )

    def most_probable(
        self, given: Mapping[str, int] | None = None
    ) -> tuple[dict[str, str], float]:
        """MPE over the evidence-restricted factor product.

        Restricting the factors first keeps the table exponential only in
        the number of *free* attributes, not the full schema; with little
        or no evidence this still materializes a large table (exact MPE by
        max-product elimination is future work).
        """
        schema = self.model.schema
        given = dict(given or {})
        restricted = [
            elimination.restrict(f, given) for f in self._factor_list()
        ]
        product = elimination.Factor((), np.array(1.0))
        for factor in restricted:
            product = elimination.multiply(product, factor)
        # Every attribute has a margin factor, so the product covers all
        # free attributes; realign its axes into schema order.
        free = [n for n in schema.names if n not in given]
        permutation = [product.names.index(n) for n in free]
        table = np.transpose(product.table, permutation)
        return most_probable_from_restricted(schema, table, given)

    def invalidate(self) -> None:
        """Drop the cached factor list (next call rebuilds)."""
        self._factors = None
        self._fingerprint = None
