"""Compiled query plans: parse and validate once, evaluate many times.

A :class:`QueryPlan` is the result of resolving a query against a schema:
attribute names checked, value labels mapped to tensor indices, the
target/evidence overlap validated, and the two marginal subsets the
evaluation needs (numerator and denominator of the conditional ratio)
precomputed in canonical schema order.  Evaluating a plan is then just two
cached-marginal lookups — no string parsing, no label resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Query
from repro.data.schema import Schema
from repro.exceptions import QueryError


@dataclass(frozen=True)
class QueryPlan:
    """A query compiled against a schema and bound to a backend choice.

    Attributes
    ----------
    target, given:
        ``(name, value index)`` pairs in canonical schema order.
    joint_subset, given_subset:
        The marginal subsets evaluation reads: the numerator marginal is
        over ``target ∪ given``, the denominator over ``given`` (empty for
        unconditional queries).
    joint_index, given_index:
        Precomputed index tuples into those marginals.
    backend:
        Resolved backend name the compiling session chose for this plan.
    description:
        Human-readable ``P(target | given)`` with value labels.
    """

    target: tuple[tuple[str, int], ...]
    given: tuple[tuple[str, int], ...]
    joint_subset: tuple[str, ...]
    given_subset: tuple[str, ...]
    joint_index: tuple[int, ...]
    given_index: tuple[int, ...]
    backend: str
    description: str

    def describe(self) -> str:
        """The plan's human-readable one-line description."""
        return self.description

    def __repr__(self) -> str:
        return f"QueryPlan({self.description}, backend={self.backend!r})"


def compile_query(
    schema: Schema, query: Query | str, backend: str = ""
) -> QueryPlan:
    """Resolve a query (string or :class:`Query`) into a :class:`QueryPlan`.

    Raises :class:`QueryError` on unknown attributes/values, or when target
    and evidence assign conflicting values to the same attribute.  (String
    queries reject *any* target/evidence overlap at parse time; assignments
    built programmatically may repeat an attribute with a consistent value,
    e.g. ``P(A=x | A=x) = 1``.)
    """
    if isinstance(query, str):
        query = Query.parse(schema, query)
    if not query.target:
        raise QueryError("query has an empty target")
    target_idx = schema.indices_of(query.target)
    given_idx = schema.indices_of(query.given)
    for name, value in target_idx.items():
        if name in given_idx and given_idx[name] != value:
            raise QueryError(
                f"target and evidence conflict on attribute {name!r}"
            )
    merged = {**given_idx, **target_idx}
    joint_subset = schema.canonical_subset(list(merged))
    given_subset = schema.canonical_subset(list(given_idx))
    return QueryPlan(
        target=tuple(
            (n, target_idx[n])
            for n in schema.canonical_subset(list(target_idx))
        ),
        given=tuple((n, given_idx[n]) for n in given_subset),
        joint_subset=joint_subset,
        given_subset=given_subset,
        joint_index=tuple(merged[n] for n in joint_subset),
        given_index=tuple(given_idx[n] for n in given_subset),
        backend=backend,
        description=query.describe(),
    )
