"""Query sessions: the serve-many half of fit-once/serve-many.

A :class:`QuerySession` binds a fitted model to an inference backend and
amortizes everything that repeated queries share:

- query strings compile once into :class:`~repro.api.plan.QueryPlan` objects
  (an LRU-bounded plan cache keyed by the raw text);
- marginals are memoized in an LRU cache keyed by attribute subset, so a
  batch of queries touching the same subsets pays for each marginal once;
- the backend itself caches its expensive artifact (the joint tensor for
  dense, the factor decomposition for elimination).

Swapping the model with :meth:`set_model` — or mutating it in place and
calling :meth:`invalidate` — drops every cache, so a session never serves
answers from a stale model.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence
from typing import Iterable

import numpy as np

from repro.api.backends import create_backend
from repro.api.plan import QueryPlan, compile_query
from repro.core.query import Query
from repro.exceptions import QueryError
from repro.maxent.model import MaxEntModel

Assignment = Mapping[str, str | int]

DEFAULT_CACHE_SIZE = 256


class QuerySession:
    """Compiled-plan query evaluation with memoized marginals.

    Parameters
    ----------
    model:
        The fitted maxent model to serve.
    backend:
        Backend name (``"dense"``, ``"elimination"``, any registered
        plugin) or ``"auto"`` to select per-model.
    cache_size:
        Bound on both the marginal LRU cache and the compiled-plan cache.
    max_workers:
        Worker-process count for :meth:`batch`.  1 (the default)
        evaluates in-process; above 1 batches are sharded across a
        :class:`~repro.parallel.query.ParallelQueryEvaluator` — each
        worker holds its own session (plan cache, marginal LRU, backend
        artifact) that stays warm across batches.  Results keep input
        order, and single-query paths (:meth:`ask`, :meth:`probability`)
        stay in-process either way.  Call :meth:`close` (or use the
        session as a context manager) to stop the workers.
    worker_addresses:
        ``HOST:PORT`` addresses of remote ``repro worker`` daemons; a
        non-empty list shards batches over TCP (one pinned remote
        session per address) regardless of ``max_workers``.  Empty (the
        default) leaves batches local unless the environment
        (``REPRO_PARALLEL_TRANSPORT=tcp`` + ``REPRO_WORKER_ADDRESSES``)
        says otherwise.
    """

    def __init__(
        self,
        model: MaxEntModel,
        backend: str = "auto",
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_workers: int = 1,
        worker_addresses=(),
    ):
        if cache_size < 1:
            raise QueryError(f"cache_size must be positive, got {cache_size}")
        if max_workers < 1:
            raise QueryError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._requested_backend = backend
        self._cache_size = int(cache_size)
        self._max_workers = int(max_workers)
        self._worker_addresses = tuple(worker_addresses or ())
        self._parallel = None
        self.set_model(model)

    # -- model / backend lifecycle -------------------------------------------------

    @property
    def model(self) -> MaxEntModel:
        """The model the session currently serves."""
        return self._model

    @property
    def backend(self):
        """The resolved :class:`~repro.api.backends.InferenceBackend`."""
        return self._backend

    def set_model(self, model: MaxEntModel) -> None:
        """Point the session at a new model, dropping every cache."""
        self._model = model
        self._backend = create_backend(self._requested_backend, model)
        self._marginals: OrderedDict[tuple[str, ...], np.ndarray] = (
            OrderedDict()
        )
        self._plans: OrderedDict[str, QueryPlan] = OrderedDict()
        self._fingerprint = model.fingerprint()
        self._hits = 0
        self._misses = 0
        if self._parallel is not None:
            self._parallel.set_model(model)

    def invalidate(self) -> None:
        """Drop caches without replacing the model (after in-place edits)."""
        self._backend.invalidate()
        self._marginals.clear()
        self._plans.clear()
        self._hits = 0
        self._misses = 0
        if self._parallel is not None:
            self._parallel.reset()

    def close(self) -> None:
        """Stop batch worker processes, if any were started; idempotent.

        The session remains usable afterwards — a later :meth:`batch`
        starts a fresh pool.
        """
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- compilation ---------------------------------------------------------------

    def compile(self, query: str | Query | QueryPlan) -> QueryPlan:
        """Compile a query into a plan (cached for string queries)."""
        if isinstance(query, QueryPlan):
            return query
        if isinstance(query, Query):
            return compile_query(
                self._model.schema, query, backend=self._backend.name
            )
        plan = self._plans.get(query)
        if plan is None:
            plan = compile_query(
                self._model.schema, query, backend=self._backend.name
            )
            self._plans[query] = plan
            if len(self._plans) > self._cache_size:
                self._plans.popitem(last=False)
        else:
            self._plans.move_to_end(query)
        return plan

    # -- marginal cache ------------------------------------------------------------

    def _sync(self) -> None:
        """Drop the marginal cache if the model was mutated in place.

        Called once per logical operation (single evaluation or whole
        batch), not per marginal lookup, so cache hits — the hot path —
        pay one fingerprint hash per operation.  Cache misses additionally
        pay the backend's own freshness check, but those are bounded by
        the number of distinct marginal subsets, not the query count.
        """
        fingerprint = self._model.fingerprint()
        if fingerprint != self._fingerprint:
            self._marginals.clear()
            self._fingerprint = fingerprint

    def marginal(self, names: Sequence[str]) -> np.ndarray:
        """Memoized normalized marginal over ``names`` (schema order).

        The returned array is read-only (it is the live cache entry); copy
        it before mutating.  In-place model edits are detected via
        :meth:`~repro.maxent.model.MaxEntModel.fingerprint` and drop the
        cache, so a mutated model never serves stale marginals.
        """
        self._sync()
        return self._marginal(names)

    def _marginal(self, names: Sequence[str]) -> np.ndarray:
        key = self._model.schema.canonical_subset(names)
        cached = self._marginals.get(key)
        if cached is not None:
            self._hits += 1
            self._marginals.move_to_end(key)
            return cached
        self._misses += 1
        table = np.asarray(self._backend.marginal(key))
        table.flags.writeable = False
        self._marginals[key] = table
        if len(self._marginals) > self._cache_size:
            self._marginals.popitem(last=False)
        return table

    def cache_info(self) -> dict[str, int | str]:
        """Cache statistics: backend name, sizes, hits, misses."""
        return {
            "backend": self._backend.name,
            "marginals_cached": len(self._marginals),
            "plans_cached": len(self._plans),
            "hits": self._hits,
            "misses": self._misses,
        }

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, plan: QueryPlan) -> float:
        """Evaluate a compiled plan: two marginal lookups and a ratio."""
        self._sync()
        return self._evaluate(plan)

    def _evaluate(self, plan: QueryPlan) -> float:
        numerator = float(self._marginal(plan.joint_subset)[plan.joint_index])
        if not plan.given:
            return numerator
        denominator = float(
            self._marginal(plan.given_subset)[plan.given_index]
        )
        if denominator <= 0:
            raise QueryError(
                f"evidence in {plan.description} has zero probability"
            )
        return numerator / denominator

    def ask(self, text: str) -> float:
        """Parse-and-evaluate a query string like ``"B=yes | A=smoker"``."""
        return self.evaluate(self.compile(text))

    def probability(
        self, target: Assignment, given: Assignment | None = None
    ) -> float:
        """``P(target | given)`` with labelled assignments."""
        if not target:
            return 1.0
        query = Query(target=dict(target), given=dict(given or {}))
        return self.evaluate(self.compile(query))

    def batch(
        self, queries: Iterable[str | Query | QueryPlan]
    ) -> list[float]:
        """Evaluate many queries, sharing marginal computations.

        Equivalent to (but much faster than) calling :meth:`ask` per query
        against a fresh engine: every distinct marginal subset is computed
        once, and for the dense backend the joint tensor is built once for
        the whole batch.  The model-mutation check runs once per batch —
        mutating the model concurrently with a running batch is a race in
        any case (sessions are not thread-safe).

        With ``max_workers > 1`` the batch is sharded across worker
        processes (contiguous shards, results concatenated back in input
        order); each worker compiles and caches plans and marginals
        locally, so repeated traffic shapes stay warm per worker.
        """
        if self._max_workers > 1 or self._worker_addresses:
            return self._parallel_batch(queries)
        plans = [self.compile(query) for query in queries]
        self._sync()
        return [self._evaluate(plan) for plan in plans]

    def _parallel_batch(
        self, queries: Iterable[str | Query | QueryPlan]
    ) -> list[float]:
        # A worker death self-closes the pool (mid-batch or out-of-band);
        # a dead evaluator is dropped — before use and after a failing
        # batch — so the next batch starts a fresh pool instead of
        # failing forever on "pool is closed".  Query errors leave the
        # pool healthy and the warm evaluator in place.
        if self._parallel is not None and self._parallel.pool.closed:
            # close() (not just dropping the reference) so the evaluator's
            # shared-memory segments are unlinked now, not at GC's leisure.
            self._parallel.close()
            self._parallel = None
        if self._parallel is None:
            from repro.parallel.query import ParallelQueryEvaluator

            self._parallel = ParallelQueryEvaluator(
                self._model,
                backend=self._requested_backend,
                cache_size=self._cache_size,
                max_workers=self._max_workers,
                worker_addresses=self._worker_addresses,
            )
        try:
            return self._parallel.batch(queries)
        finally:
            if self._parallel.pool.closed:
                self._parallel.close()
                self._parallel = None

    def distribution(
        self, name: str, given: Assignment | None = None
    ) -> dict[str, float]:
        """Full conditional distribution of one attribute.

        Returns ``{value label: P(name=value | given)}``; probabilities sum
        to 1 (up to floating point).
        """
        attribute = self._model.schema.attribute(name)
        if given and name in given:
            raise QueryError(
                f"cannot ask for the distribution of {name!r}: it is fixed "
                f"by the evidence"
            )
        return {
            value: self.probability({name: value}, given)
            for value in attribute.values
        }

    def most_probable(
        self, given: Assignment | None = None
    ) -> tuple[dict[str, str], float]:
        """Most probable complete assignment consistent with the evidence.

        Returns ``(assignment labels, conditional probability)`` — the MPE
        query of a probabilistic expert system.
        """
        fixed = self._model.schema.indices_of(given or {})
        return self._backend.most_probable(fixed)

    def __repr__(self) -> str:
        workers = (
            f", max_workers={self._max_workers}"
            if self._max_workers > 1
            else ""
        )
        return (
            f"QuerySession({self._model!r}, backend={self._backend.name!r}, "
            f"cache_size={self._cache_size}{workers})"
        )
