"""Session-based query API: compiled plans, batching, pluggable backends.

The paper's claim is that once the significant joint probabilities are
acquired, *any* probability relation follows.  This package is the serving
side of that claim — the fit-once/serve-many split:

- :mod:`repro.api.backends` — the :class:`InferenceBackend` protocol with a
  dense (joint-tensor) and an elimination (Appendix-B factored) engine, an
  ``auto`` selector, and a registry for plugging in new backends.
- :mod:`repro.api.plan` — :class:`QueryPlan`, a query parsed and validated
  once into resolved value indices so evaluation is two array lookups.
- :mod:`repro.api.session` — :class:`QuerySession`, which compiles queries,
  memoizes marginals in an LRU cache, and evaluates batches so shared
  sub-computations are paid once.
- :mod:`repro.api.builder` — the fluent ``kb.p("A=x").given("B=y")`` form.

Quickstart::

    session = kb.session(backend="auto")
    plan = session.compile("CANCER=yes | SMOKING=smoker")
    session.evaluate(plan)
    session.batch(["CANCER=yes", "CANCER=yes | SMOKING=smoker"])
"""

from repro.api.backends import (
    DenseBackend,
    EliminationBackend,
    InferenceBackend,
    available_backends,
    create_backend,
    register_backend,
    select_backend,
)
from repro.api.builder import ProbabilityExpression
from repro.api.plan import QueryPlan, compile_query
from repro.api.session import QuerySession

__all__ = [
    "DenseBackend",
    "EliminationBackend",
    "InferenceBackend",
    "ProbabilityExpression",
    "QueryPlan",
    "QuerySession",
    "available_backends",
    "compile_query",
    "create_backend",
    "register_backend",
    "select_backend",
]
