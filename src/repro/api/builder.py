"""Fluent probability expressions: ``kb.p("CANCER=yes").given("SMOKING=smoker")``.

A :class:`ProbabilityExpression` accumulates target and evidence terms and
evaluates lazily through a :class:`~repro.api.session.QuerySession`, so the
fluent form gets the same compiled-plan and marginal caching as every other
query path.  Expressions are immutable: each ``.given(...)`` returns a new
expression, so partially-built queries can be shared and extended safely.
"""

from __future__ import annotations

from repro.api.session import QuerySession


class ProbabilityExpression:
    """A lazily-evaluated conditional probability, built fluently.

    >>> kb.p("CANCER=yes").given("SMOKING=smoker").value()
    0.186...
    >>> float(kb.p("CANCER=yes"))
    0.126...
    """

    def __init__(
        self,
        session: QuerySession,
        target: str,
        given: tuple[str, ...] = (),
    ):
        self._session = session
        self._target = target
        self._given = given

    def given(self, evidence: str) -> "ProbabilityExpression":
        """Return a new expression with ``evidence`` terms appended."""
        return ProbabilityExpression(
            self._session, self._target, self._given + (evidence,)
        )

    def text(self) -> str:
        """The equivalent query string (what :meth:`value` evaluates)."""
        if not self._given:
            return self._target
        return f"{self._target} | {', '.join(self._given)}"

    def plan(self):
        """Compile (and validate) without evaluating."""
        return self._session.compile(self.text())

    def value(self) -> float:
        """Evaluate the expression to a probability."""
        return self._session.ask(self.text())

    def __float__(self) -> float:
        return self.value()

    def __repr__(self) -> str:
        # Deliberately does not evaluate (or even compile): repr must never
        # raise or trigger inference just because the object was displayed.
        return f"ProbabilityExpression({self.text()!r})"
