"""Discovery of significant correlations (the paper's Figure-3 procedure)."""

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine, discover
from repro.discovery.trace import DiscoveryResult, ScanRecord

__all__ = [
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryResult",
    "ScanRecord",
    "discover",
]
