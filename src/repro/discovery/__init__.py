"""Discovery of significant correlations (the paper's Figure-3 procedure)."""

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine, discover
from repro.discovery.trace import (
    ConstraintRecovery,
    DiscoveryResult,
    ScanRecord,
    score_constraint_keys,
)

__all__ = [
    "ConstraintRecovery",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryResult",
    "ScanRecord",
    "discover",
    "score_constraint_keys",
]
