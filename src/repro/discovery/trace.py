"""Audit trail of a discovery run.

Every scan (one pass over the candidate cells at one order) is recorded
with its full list of :class:`~repro.significance.result.CellTest` rows and
the chosen constraint, so a run can be replayed, rendered as the paper's
Table 1, and asserted against in tests.  Warm-started reruns additionally
record which previously adopted constraints were re-imposed without a
fresh scan (:attr:`ScanRecord.readopted`).

The module also serializes the whole trail (:func:`result_to_dict` /
:func:`result_from_dict`) so a saved knowledge base carries its audit
records — and its training table, which is what makes a *loaded* knowledge
base updatable with warm-started rediscovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.data.contingency import ContingencyTable
from repro.data.io import table_from_dict, table_to_dict
from repro.discovery.config import DiscoveryConfig
from repro.exceptions import DataError
from repro.maxent.constraints import (
    CellConstraint,
    CellKey,
    ConstraintSet,
    cellkey_from_dict,
    cellkey_to_dict,
)
from repro.maxent.model import MaxEntModel
from repro.significance.result import CellTest

if TYPE_CHECKING:
    from repro.significance.kernels import DiscoveryProfile


@dataclass
class ScanRecord:
    """One scan of all candidate cells at one order.

    ``chosen`` is None for the terminating scan at each order (the scan
    that found nothing significant).  ``readopted`` lists constraints a
    warm-started rerun re-imposed from the previous revision without a
    scan; such records carry no tests.
    """

    order: int
    tests: list[CellTest]
    chosen: CellTest | None
    fit_sweeps: int = 0
    readopted: tuple[CellKey, ...] = ()

    @property
    def significant(self) -> list[CellTest]:
        return [t for t in self.tests if t.significant]


@dataclass(frozen=True)
class ConstraintRecovery:
    """How a set of adopted constraint keys compares to a ground truth.

    The convention matches :func:`repro.synth.generators.recovery_score`:
    a truth cell counts as recovered only if its exact key was adopted,
    and every non-truth adoption is a false alarm.  With empty truth and
    no adoptions both precision and recall are 1.0 (the null scenario's
    perfect outcome); finding *nothing* when truth is non-empty scores
    0.0 on both, so a find-nothing regression can never pass a
    precision-only gate vacuously.
    """

    precision: float
    recall: float
    hits: tuple[CellKey, ...]
    false_alarms: tuple[CellKey, ...]
    missed: tuple[CellKey, ...]


def score_constraint_keys(
    truth: set[CellKey], found: set[CellKey]
) -> ConstraintRecovery:
    """Precision/recall of ``found`` constraint keys against ``truth``."""
    hits = truth & found
    false_alarms = found - truth
    missed = truth - found
    if found:
        precision = len(hits) / len(found)
    else:
        precision = 1.0 if not truth else 0.0
    recall = len(hits) / len(truth) if truth else 1.0
    return ConstraintRecovery(
        precision=precision,
        recall=recall,
        hits=tuple(sorted(hits)),
        false_alarms=tuple(sorted(false_alarms)),
        missed=tuple(sorted(missed)),
    )


@dataclass
class DiscoveryResult:
    """Everything produced by a discovery run.

    ``profile`` carries the engine's per-stage wall-clock instrumentation
    (scan / fit / verify); it is observability, not part of the audit
    trail, so it is not serialized and loaded results leave it ``None``.
    """

    table: ContingencyTable
    model: MaxEntModel
    constraints: ConstraintSet
    scans: list[ScanRecord] = field(default_factory=list)
    config: DiscoveryConfig | None = None
    profile: "DiscoveryProfile | None" = None

    @property
    def found(self) -> tuple[CellConstraint, ...]:
        """Cell constraints adopted, in discovery order."""
        return self.constraints.cells

    def adopted_keys(self) -> set[CellKey]:
        """Keys of every adopted cell constraint (order-independent)."""
        return {cell.key for cell in self.constraints.cells}

    def score_against(self, truth: set[CellKey]) -> ConstraintRecovery:
        """Score the adopted constraints against known ground truth.

        The hook that turns a discovery run on a generated workload into
        a conformance measurement (see :mod:`repro.scenarios`).
        """
        return score_constraint_keys(set(truth), self.adopted_keys())

    def found_at_order(self, order: int) -> tuple[CellConstraint, ...]:
        return self.constraints.cells_of_order(order)

    def num_scans(self) -> int:
        return len(self.scans)

    def summary(self) -> str:
        """Readable multi-line report of what was discovered."""
        schema = self.table.schema
        lines = [
            f"Discovery over N={self.table.total} samples, "
            f"{len(schema)} attributes {list(schema.names)}",
            f"scans: {len(self.scans)}, constraints found: {len(self.found)}",
        ]
        for number, constraint in enumerate(self.found, start=1):
            observed = self.table.count(
                dict(zip(constraint.attributes, constraint.values))
            )
            lines.append(
                f"  {number}. {constraint.describe(schema)}  "
                f"[observed N={observed}]"
            )
        if not self.found:
            lines.append("  (no significant correlations; attributes look independent)")
        return "\n".join(lines)


# -- serialization ------------------------------------------------------------------


def _test_to_dict(test: CellTest) -> dict:
    return {
        "attributes": list(test.attributes),
        "values": list(test.values),
        "observed": test.observed,
        "predicted_probability": test.predicted_probability,
        "mean": test.mean,
        "sd": test.sd,
        "num_sd": test.num_sd,
        "m1": test.m1,
        "m2": test.m2,
        "determined": test.determined,
        "feasible_range": test.feasible_range,
    }


def _test_from_dict(data: dict) -> CellTest:
    return CellTest(
        attributes=tuple(data["attributes"]),
        values=tuple(int(v) for v in data["values"]),
        observed=int(data["observed"]),
        predicted_probability=float(data["predicted_probability"]),
        mean=float(data["mean"]),
        sd=float(data["sd"]),
        num_sd=float(data["num_sd"]),
        m1=float(data["m1"]),
        m2=float(data["m2"]),
        determined=bool(data["determined"]),
        feasible_range=int(data["feasible_range"]),
    )


def _scan_to_dict(scan: ScanRecord) -> dict:
    return {
        "order": scan.order,
        "tests": [_test_to_dict(t) for t in scan.tests],
        # The chosen test is one of ``tests``; store its index, -1 for none.
        "chosen": scan.tests.index(scan.chosen) if scan.chosen else -1,
        "fit_sweeps": scan.fit_sweeps,
        "readopted": [cellkey_to_dict(key) for key in scan.readopted],
    }


def _scan_from_dict(data: dict) -> ScanRecord:
    tests = [_test_from_dict(item) for item in data["tests"]]
    chosen_index = int(data["chosen"])
    return ScanRecord(
        order=int(data["order"]),
        tests=tests,
        chosen=tests[chosen_index] if chosen_index >= 0 else None,
        fit_sweeps=int(data.get("fit_sweeps", 0)),
        readopted=tuple(
            cellkey_from_dict(item) for item in data.get("readopted", [])
        ),
    )


def _constraints_to_dict(constraints: ConstraintSet) -> dict:
    return {
        "margins": {
            name: constraints.margin(name).tolist()
            for name in constraints.margin_names
        },
        "cells": [
            {**cellkey_to_dict(cell.key), "probability": cell.probability}
            for cell in constraints.cells
        ],
        "subset_margins": [
            {"attributes": list(names), "probabilities": array.tolist()}
            for names, array in constraints.subset_margins.items()
        ],
    }


def _constraints_from_dict(schema, data: dict) -> ConstraintSet:
    import numpy as np

    constraints = ConstraintSet(schema)
    for name, vector in data["margins"].items():
        constraints.set_margin(name, vector)
    for item in data["cells"]:
        constraints.add_cell(
            CellConstraint(*cellkey_from_dict(item), float(item["probability"]))
        )
    for item in data.get("subset_margins", []):
        constraints.set_subset_margin(
            item["attributes"], np.asarray(item["probabilities"], dtype=float)
        )
    return constraints


def result_to_dict(result: DiscoveryResult) -> dict:
    """JSON-ready dict of the full audit trail (model stored separately).

    The fitted model is *not* included — the knowledge-base format already
    stores it at top level, and :func:`result_from_dict` re-attaches it.
    """
    return {
        "table": table_to_dict(result.table),
        "constraints": _constraints_to_dict(result.constraints),
        "config": result.config.to_dict() if result.config else None,
        "scans": [_scan_to_dict(scan) for scan in result.scans],
    }


def result_from_dict(data: dict, model: MaxEntModel) -> DiscoveryResult:
    """Inverse of :func:`result_to_dict`, re-attaching the fitted model."""
    try:
        table = table_from_dict(data["table"])
        if table.schema != model.schema:
            raise DataError(
                "discovery trace schema does not match the model schema"
            )
        config_data = data.get("config")
        return DiscoveryResult(
            table=table,
            model=model,
            constraints=_constraints_from_dict(
                model.schema, data["constraints"]
            ),
            scans=[_scan_from_dict(item) for item in data.get("scans", [])],
            config=(
                DiscoveryConfig.from_dict(config_data)
                if config_data is not None
                else None
            ),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(f"malformed discovery trace dict: {error}") from None
