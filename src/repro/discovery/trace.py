"""Audit trail of a discovery run.

Every scan (one pass over the candidate cells at one order) is recorded
with its full list of :class:`~repro.significance.result.CellTest` rows and
the chosen constraint, so a run can be replayed, rendered as the paper's
Table 1, and asserted against in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.contingency import ContingencyTable
from repro.maxent.constraints import CellConstraint, ConstraintSet
from repro.maxent.model import MaxEntModel
from repro.significance.result import CellTest


@dataclass
class ScanRecord:
    """One scan of all candidate cells at one order.

    ``chosen`` is None for the terminating scan at each order (the scan
    that found nothing significant).
    """

    order: int
    tests: list[CellTest]
    chosen: CellTest | None
    fit_sweeps: int = 0

    @property
    def significant(self) -> list[CellTest]:
        return [t for t in self.tests if t.significant]


@dataclass
class DiscoveryResult:
    """Everything produced by a discovery run."""

    table: ContingencyTable
    model: MaxEntModel
    constraints: ConstraintSet
    scans: list[ScanRecord] = field(default_factory=list)

    @property
    def found(self) -> tuple[CellConstraint, ...]:
        """Cell constraints adopted, in discovery order."""
        return self.constraints.cells

    def found_at_order(self, order: int) -> tuple[CellConstraint, ...]:
        return self.constraints.cells_of_order(order)

    def num_scans(self) -> int:
        return len(self.scans)

    def summary(self) -> str:
        """Readable multi-line report of what was discovered."""
        schema = self.table.schema
        lines = [
            f"Discovery over N={self.table.total} samples, "
            f"{len(schema)} attributes {list(schema.names)}",
            f"scans: {len(self.scans)}, constraints found: {len(self.found)}",
        ]
        for number, constraint in enumerate(self.found, start=1):
            observed = self.table.count(
                dict(zip(constraint.attributes, constraint.values))
            )
            lines.append(
                f"  {number}. {constraint.describe(schema)}  "
                f"[observed N={observed}]"
            )
        if not self.found:
            lines.append("  (no significant correlations; attributes look independent)")
        return "\n".join(lines)
