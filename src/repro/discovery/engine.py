"""The discovery loop of Figure 3, plus warm-started rediscovery.

Starting from the independence model (first-order margins only), the engine
scans every marginal cell at order 2 with the MML test, adopts the most
significant cell as a new constraint, refits the ``a`` values (warm-started,
per Figure 4's "starting with the last previously calculated a values"),
and rescans — until no cell at that order is significant.  It then moves to
order 3 and so on up to R (or ``config.max_order``).

When data arrives incrementally, :meth:`DiscoveryEngine.rerun` (facade:
:func:`rediscover`) extends Figure 4's warm start across *revisions*: the
previous run's adopted constraints are re-imposed — retargeted at the new
table's observed probabilities — and the fit restarts from the previous
``a`` values, so only one verification scan per order is needed instead of
one scan per adoption.  Because the constraint system has a unique positive
solution, the warm start changes convergence speed, never the fitted model:
when the constraint set is stable, the rerun lands on exactly the model a
cold refit of the merged table would.
"""

from __future__ import annotations

import time

from repro.data.contingency import ContingencyTable
from repro.discovery.config import DiscoveryConfig
from repro.discovery.trace import DiscoveryResult, ScanRecord
from repro.exceptions import ConstraintError, DataError, StaleConstraintError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import fit_ipf, warm_start_model
from repro.maxent.model import MaxEntModel
from repro.significance.kernels import DiscoveryProfile, OrderScanKernel
from repro.significance.mml import (
    evaluate_cell,
    most_significant,
    reference_scan_order,
)

__all__ = [
    "DiscoveryEngine",
    "StaleConstraintError",
    "discover",
    "rediscover",
]

#: Scan implementations an engine can run: the vectorized kernel layer
#: (default) or the scalar cell-by-cell oracle it is verified against.
SCAN_BACKENDS = ("kernel", "reference")

# Tolerance for the rerun re-verification chain's intermediate fits; the
# per-order final fit (and therefore the resulting model) always uses the
# configured tolerance.
_RERUN_CHAIN_TOL = 1e-5


class DiscoveryEngine:
    """Finds all statistically significant correlations in a table.

    Parameters
    ----------
    config:
        Knobs of the Figure-3 procedure.
    scan_backend:
        ``"kernel"`` (default) runs the vectorized
        :class:`~repro.significance.kernels.OrderScanKernel`, reusing
        data-side statistics across adoptions within an order;
        ``"reference"`` runs the scalar cell-by-cell oracle.  Both produce
        bit-identical results — the seam exists so benchmarks and property
        tests can enforce exactly that.
    executor:
        A :class:`~repro.parallel.scan.ShardedScanExecutor` to spread
        per-order scans across worker processes.  When omitted and
        ``config.max_workers > 1`` (kernel backend only), the engine
        creates — and owns — one; call :meth:`close` (or use the engine
        as a context manager) to stop its workers.  A config-created
        executor only engages on orders whose candidate pool reaches
        ``config.parallel_scan_threshold`` — smaller orders run the
        serial kernel (and spawn no workers), with the chosen path per
        order recorded in ``profile.scan_paths``.  An executor passed in
        explicitly is always used.  Sharded results are merged in
        canonical candidate order, so adoption decisions are
        bit-identical to the serial path regardless of worker count.
    """

    def __init__(
        self,
        config: DiscoveryConfig | None = None,
        scan_backend: str = "kernel",
        executor=None,
    ):
        self.config = config or DiscoveryConfig()
        if scan_backend not in SCAN_BACKENDS:
            raise DataError(
                f"unknown scan backend {scan_backend!r}; "
                f"choose one of {SCAN_BACKENDS}"
            )
        self.scan_backend = scan_backend
        self.profile = DiscoveryProfile()
        self._owns_executor = False
        if (
            executor is None
            and scan_backend == "kernel"
            and (
                self.config.max_workers > 1
                or self.config.worker_addresses
            )
        ):
            from repro.parallel.scan import ShardedScanExecutor

            executor = ShardedScanExecutor(
                self.config.max_workers,
                transport=self.config.transport,
                worker_addresses=self.config.worker_addresses,
            )
            self._owns_executor = True
        self.executor = executor

    def close(self) -> None:
        """Stop a config-created executor's workers; idempotent.

        An executor passed in explicitly is the caller's to close.
        """
        if self._owns_executor and self.executor is not None:
            self.executor.close()
            self.executor = None
            self._owns_executor = False

    def __enter__(self) -> "DiscoveryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, table: ContingencyTable) -> DiscoveryResult:
        """Execute the full Figure-3 procedure on a contingency table."""
        if table.total == 0:
            raise DataError("cannot run discovery on an empty table")
        config = self.config
        schema = table.schema
        self.profile = DiscoveryProfile()
        constraints = ConstraintSet.first_order(table)
        model = MaxEntModel.independent(
            schema,
            {name: constraints.margin(name) for name in schema.names},
        )
        if config.given_constraints:
            # The paper's "originally given as significant" marginals:
            # imposed before the first scan and never re-tested.
            for given in config.given_constraints:
                constraints.add_cell(given)
            model = self._fit(constraints, model).model
        self._num_given = len(config.given_constraints)
        result = DiscoveryResult(
            table=table,
            model=model,
            constraints=constraints,
            config=config,
            profile=self.profile,
        )

        highest_order = config.max_order or len(schema)
        highest_order = min(highest_order, len(schema))
        for order in range(2, highest_order + 1):
            model = self._scan_level(table, order, constraints, model, result)
        result.model = model
        return result

    def rerun(
        self, table: ContingencyTable, previous: DiscoveryResult
    ) -> DiscoveryResult:
        """Warm-started rediscovery of an updated table.

        Per order, the previous run's adopted constraints are re-imposed in
        their original adoption order — each one first re-verified with the
        MML test against the current intermediate model (the same test a
        cold greedy run applies at that point, evaluated against a
        chain-tolerance fit — see below), then retargeted at the
        new table's observed probability and refitted warm.  The chain
        starts from the previous revision's fitted *margin* factors
        (Figure 4's "last previously calculated a values") and evolves
        like cold discovery's own within-run warm starts; re-adopted cell
        factors are re-derived from neutral 1.0 seeds — measured faster
        than carrying the previous final values, which were calculated
        amid the full constraint set and overshoot in the prefix context.
        One verification scan per order then checks for newly significant
        cells, continuing the ordinary greedy loop only where it finds
        some.

        Because each intermediate fit converges to the unique maxent
        solution of its constraint set, the warm start changes convergence
        speed, not answers: the expensive part a rerun skips is the full
        candidate scan between adoptions, replaced by one test per
        re-adopted constraint.  When the new data stop supporting an old
        constraint a :class:`StaleConstraintError` is raised (and a
        :class:`ConstraintError` when they outright contradict one);
        callers should fall back to a cold :meth:`run` in either case.
        A rerun can differ from a cold refit only on near-ties: a flip in
        the greedy argmax between equally defensible cells, or a
        constraint whose significance margin is thinner than the
        intermediate chain fits' loosened tolerance
        (:data:`_RERUN_CHAIN_TOL`; the per-order final fit, and therefore
        the resulting model, always uses the configured tolerance).  Both
        outcomes then satisfy the same termination criterion, but the
        adopted cells may differ.
        """
        if table.total == 0:
            raise DataError("cannot run rediscovery on an empty table")
        config = self.config
        schema = table.schema
        if schema != previous.constraints.schema:
            raise DataError(
                "rediscovery table schema does not match the previous "
                "discovery's schema"
            )
        self.profile = DiscoveryProfile()
        constraints = ConstraintSet.first_order(table)
        for given in config.given_constraints:
            # A-priori constraints keep their given targets; they are
            # knowledge, not data.
            constraints.add_cell(given)
        self._num_given = len(config.given_constraints)
        model = warm_start_model(constraints, previous.model)
        result = DiscoveryResult(
            table=table,
            model=model,
            constraints=constraints,
            config=config,
            profile=self.profile,
        )
        # Sync the first-order factors to the merged table's margins (and
        # any given constraints) before the first re-verification.  Like
        # cold discovery's initial model build, this is not a scan; its
        # sweeps are folded into the first readoption record below.
        fit = self._fit(constraints, model)
        model = fit.model
        carried_sweeps = fit.sweeps

        # The re-verification chain replays cold discovery's adoption
        # sequence (minus the candidate scans).  Its intermediate models
        # only feed the per-cell significance tests, so they are fitted at
        # a looser tolerance; each order then gets one full-tolerance fit,
        # which is what the verification scan and the final model see.
        chain_tol = max(config.tol, _RERUN_CHAIN_TOL)
        highest_order = config.max_order or len(schema)
        highest_order = min(highest_order, len(schema))
        previous_cells = previous.constraints.cells
        for order in range(2, highest_order + 1):
            readopted: list = []
            sweeps = carried_sweeps
            for cell in previous_cells:
                if cell.order != order or constraints.has_cell(cell.key):
                    continue
                if self._at_capacity(constraints):
                    # Same max_constraints cap the cold loop enforces;
                    # re-adoption follows the original adoption order, so
                    # a lowered cap keeps the earliest adoptions.
                    break
                verify_start = time.perf_counter()
                test = evaluate_cell(
                    table,
                    model,
                    cell.attributes,
                    cell.values,
                    constraints,
                    config.priors,
                )
                self.profile.add_verify(
                    time.perf_counter() - verify_start, 1
                )
                if not test.significant:
                    raise StaleConstraintError(
                        f"previously adopted constraint {cell.key} is no "
                        f"longer significant on the updated table "
                        f"(m2-m1={test.delta:+.3f})"
                    )
                retargeted = constraints.cell_from_table(
                    table, cell.attributes, cell.values
                )
                constraints.add_cell(retargeted)
                fit = self._fit(constraints, model, tol=chain_tol)
                model = fit.model
                sweeps += fit.sweeps
                readopted.append(cell.key)
            if readopted:
                fit = self._fit(constraints, model)
                model = fit.model
                sweeps += fit.sweeps
                carried_sweeps = 0
                result.scans.append(
                    ScanRecord(
                        order=order,
                        tests=[],
                        chosen=None,
                        fit_sweeps=sweeps,
                        readopted=tuple(readopted),
                    )
                )
            model = self._scan_level(table, order, constraints, model, result)
        result.model = model
        return result

    def _scan_level(
        self,
        table: ContingencyTable,
        order: int,
        constraints: ConstraintSet,
        model: MaxEntModel,
        result: DiscoveryResult,
    ) -> MaxEntModel:
        """Repeat scan-adopt-refit at one order until nothing is significant.

        With the kernel backend one
        :class:`~repro.significance.kernels.OrderScanKernel` serves the
        whole loop: data-side statistics (counts, coefficient arrays,
        feasible ranges) persist across adoptions and only the subsets a
        new constraint touches are recomputed.  With an executor the same
        kernels run sharded across worker processes — one restricted
        kernel per worker, adoptions broadcast after each round — and the
        merged scans are bit-identical to the serial kernel's.
        """
        config = self.config
        profile = self.profile
        kernel: OrderScanKernel | None = None
        executor = self.executor if self.scan_backend == "kernel" else None
        pool_cells = _candidate_pool_size(table, order)
        if (
            executor is not None
            and self._owns_executor
            and pool_cells < config.parallel_scan_threshold
        ):
            # Small pool: shard dispatch + merge costs more than the scan,
            # so a config-created executor is bypassed for this order (an
            # explicitly supplied executor is the caller's decision and is
            # always honored).  Falling through to the serial kernel also
            # means a run whose orders all stay small never spawns worker
            # processes at all (the pool starts them lazily on first use).
            executor = None
        if executor is not None:
            profile.record_scan_path(order, "sharded", pool_cells)
            executor.begin_order(table, order, constraints, config.priors)
        elif self.scan_backend == "kernel":
            profile.record_scan_path(order, "serial", pool_cells)
            kernel = OrderScanKernel(table, order, constraints, config.priors)
        else:
            profile.record_scan_path(order, "reference", pool_cells)
        counters_before = (
            executor.counters.snapshot() if executor is not None else None
        )
        try:
            return self._scan_level_loop(
                table, order, constraints, model, result, kernel, executor
            )
        finally:
            if executor is not None:
                executor.end_order()
                profile.add_transport(
                    order,
                    executor.transport,
                    executor.counters.delta(counters_before).to_dict(),
                )

    def _scan_level_loop(
        self,
        table: ContingencyTable,
        order: int,
        constraints: ConstraintSet,
        model: MaxEntModel,
        result: DiscoveryResult,
        kernel: OrderScanKernel | None,
        executor,
    ) -> MaxEntModel:
        config = self.config
        profile = self.profile
        while True:
            scan_start = time.perf_counter()
            if executor is not None:
                # The executor hands back the argmax merged from
                # shard-local bests, so the full (lazy) test list never
                # has to be decoded on the hot path.
                tests, best = executor.scan(model)
            elif kernel is not None:
                tests = kernel.scan(model)
                best = most_significant(tests)
            else:
                tests = reference_scan_order(
                    table, model, order, constraints, config.priors
                )
                best = most_significant(tests)
            scan_seconds = time.perf_counter() - scan_start
            capped = best is not None and self._at_capacity(constraints)
            if capped:
                best = None
            if best is None:
                # The terminating scan is the order's verification pass —
                # unless the capacity cap cut it off mid-find, in which
                # case it did real scanning work and is billed as such.
                if capped:
                    profile.add_scan(scan_seconds, len(tests))
                else:
                    profile.add_verify(scan_seconds, len(tests))
                result.scans.append(
                    ScanRecord(order=order, tests=tests, chosen=None)
                )
                return model
            profile.add_scan(scan_seconds, len(tests))

            constraint = constraints.cell_from_table(
                table, best.attributes, best.values
            )
            try:
                constraints.add_cell(constraint)
            except ConstraintError:
                # Degenerate candidate (e.g. target indistinguishable from a
                # containing marginal); record the scan and stop this order.
                result.scans.append(
                    ScanRecord(order=order, tests=tests, chosen=None)
                )
                return model
            if executor is not None:
                executor.notify_adopted(constraint)
            elif kernel is not None:
                kernel.notify_adopted(constraint.key)
            fit = self._fit(constraints, model)
            model = fit.model
            result.scans.append(
                ScanRecord(
                    order=order,
                    tests=tests,
                    chosen=best,
                    fit_sweeps=fit.sweeps,
                )
            )

    def _fit(
        self,
        constraints: ConstraintSet,
        warm_start: MaxEntModel,
        tol: float | None = None,
    ):
        config = self.config
        if tol is None:
            tol = config.tol
        fit_start = time.perf_counter()
        if config.solver == "gevarter":
            fit = fit_gevarter(
                constraints,
                initial=warm_start,
                tol=tol,
                max_sweeps=config.max_sweeps,
                record_trace=False,
            )
        else:
            fit = fit_ipf(
                constraints,
                initial=warm_start,
                tol=tol,
                max_sweeps=config.max_sweeps,
            )
        self.profile.add_fit(time.perf_counter() - fit_start, fit.sweeps)
        return fit

    def _at_capacity(self, constraints: ConstraintSet) -> bool:
        cap = self.config.max_constraints
        if cap is None:
            return False
        adopted = len(constraints.cells) - getattr(self, "_num_given", 0)
        return adopted >= cap


def _candidate_pool_size(table: ContingencyTable, order: int) -> int:
    """Total marginal cells at ``order`` — the scan's candidate pool."""
    schema = table.schema
    total = 0
    for subset in table.subsets_of_order(order):
        cells = 1
        for name in subset:
            cells *= schema.attribute(name).cardinality
        total += cells
    return total


def discover(
    table: ContingencyTable, config: DiscoveryConfig | None = None
) -> DiscoveryResult:
    """Convenience wrapper: run discovery with an optional config.

    A ``config.max_workers > 1`` pool lives only for this run; hold a
    :class:`DiscoveryEngine` directly to amortize worker startup across
    runs.
    """
    with DiscoveryEngine(config) as engine:
        return engine.run(table)


def rediscover(
    table: ContingencyTable,
    previous: DiscoveryResult,
    config: DiscoveryConfig | None = None,
) -> DiscoveryResult:
    """Warm-started rediscovery of an updated table (see
    :meth:`DiscoveryEngine.rerun`).  Defaults to the previous run's config.
    """
    config = config or previous.config or DiscoveryConfig()
    with DiscoveryEngine(config) as engine:
        return engine.rerun(table, previous)
