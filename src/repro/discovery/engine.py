"""The discovery loop of Figure 3.

Starting from the independence model (first-order margins only), the engine
scans every marginal cell at order 2 with the MML test, adopts the most
significant cell as a new constraint, refits the ``a`` values (warm-started,
per Figure 4's "starting with the last previously calculated a values"),
and rescans — until no cell at that order is significant.  It then moves to
order 3 and so on up to R (or ``config.max_order``).
"""

from __future__ import annotations

from repro.data.contingency import ContingencyTable
from repro.discovery.config import DiscoveryConfig
from repro.discovery.trace import DiscoveryResult, ScanRecord
from repro.exceptions import ConstraintError, DataError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel
from repro.significance.mml import most_significant, scan_order


class DiscoveryEngine:
    """Finds all statistically significant correlations in a table."""

    def __init__(self, config: DiscoveryConfig | None = None):
        self.config = config or DiscoveryConfig()

    def run(self, table: ContingencyTable) -> DiscoveryResult:
        """Execute the full Figure-3 procedure on a contingency table."""
        if table.total == 0:
            raise DataError("cannot run discovery on an empty table")
        config = self.config
        schema = table.schema
        constraints = ConstraintSet.first_order(table)
        model = MaxEntModel.independent(
            schema,
            {name: constraints.margin(name) for name in schema.names},
        )
        if config.given_constraints:
            # The paper's "originally given as significant" marginals:
            # imposed before the first scan and never re-tested.
            for given in config.given_constraints:
                constraints.add_cell(given)
            model = self._fit(constraints, model).model
        self._num_given = len(config.given_constraints)
        result = DiscoveryResult(table=table, model=model, constraints=constraints)

        highest_order = config.max_order or len(schema)
        highest_order = min(highest_order, len(schema))
        for order in range(2, highest_order + 1):
            model = self._scan_level(table, order, constraints, model, result)
        result.model = model
        return result

    def _scan_level(
        self,
        table: ContingencyTable,
        order: int,
        constraints: ConstraintSet,
        model: MaxEntModel,
        result: DiscoveryResult,
    ) -> MaxEntModel:
        """Repeat scan-adopt-refit at one order until nothing is significant."""
        config = self.config
        while True:
            tests = scan_order(table, model, order, constraints, config.priors)
            best = most_significant(tests)
            if best is not None and self._at_capacity(constraints):
                best = None
            if best is None:
                result.scans.append(
                    ScanRecord(order=order, tests=tests, chosen=None)
                )
                return model

            constraint = constraints.cell_from_table(
                table, best.attributes, best.values
            )
            try:
                constraints.add_cell(constraint)
            except ConstraintError:
                # Degenerate candidate (e.g. target indistinguishable from a
                # containing marginal); record the scan and stop this order.
                result.scans.append(
                    ScanRecord(order=order, tests=tests, chosen=None)
                )
                return model
            fit = self._fit(constraints, model)
            model = fit.model
            result.scans.append(
                ScanRecord(
                    order=order,
                    tests=tests,
                    chosen=best,
                    fit_sweeps=fit.sweeps,
                )
            )

    def _fit(self, constraints: ConstraintSet, warm_start: MaxEntModel):
        config = self.config
        if config.solver == "gevarter":
            return fit_gevarter(
                constraints,
                initial=warm_start,
                tol=config.tol,
                max_sweeps=config.max_sweeps,
                record_trace=False,
            )
        return fit_ipf(
            constraints,
            initial=warm_start,
            tol=config.tol,
            max_sweeps=config.max_sweeps,
        )

    def _at_capacity(self, constraints: ConstraintSet) -> bool:
        cap = self.config.max_constraints
        if cap is None:
            return False
        adopted = len(constraints.cells) - getattr(self, "_num_given", 0)
        return adopted >= cap


def discover(
    table: ContingencyTable, config: DiscoveryConfig | None = None
) -> DiscoveryResult:
    """Convenience wrapper: run discovery with an optional config."""
    return DiscoveryEngine(config).run(table)
