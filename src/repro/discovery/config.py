"""Configuration of the discovery loop."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DataError
from repro.maxent.constraints import (
    CellConstraint,
    cellkey_from_dict,
    cellkey_to_dict,
)
from repro.significance.mml import MMLPriors

#: Solver names accepted by :class:`DiscoveryConfig`.
SOLVERS = ("ipf", "gevarter")


@dataclass(frozen=True)
class DiscoveryConfig:
    """Knobs of the Figure-3 procedure.

    Attributes
    ----------
    max_order:
        Highest interaction order to scan; ``None`` means all the way to R
        (the full attribute count), the paper's default.
    priors:
        MML hypothesis priors; the default cancels the prior terms (Eq 63).
    solver:
        ``"ipf"`` (fast sweeps) or ``"gevarter"`` (the paper's sequential
        scalar updates with full traces).
    tol / max_sweeps:
        Solver convergence settings for each refit.
    max_constraints:
        Safety cap on the total number of cell constraints adopted;
        ``None`` means unlimited (the scan itself terminates because each
        cell is adopted at most once).
    given_constraints:
        Cell constraints known *a priori* — the paper's "higher-order
        marginals ... originally given as significant".  They are imposed
        before the first scan, participate in the Eq-41 range bounds, and
        are never re-tested.
    max_workers:
        Worker-process count for the per-order candidate scans.  1 (the
        default) runs serially; above 1 the engine shards each scan
        across a :class:`~repro.parallel.scan.ShardedScanExecutor`, with
        adoption decisions bit-identical to the serial path.  Purely an
        execution knob: it never changes results, only wall-clock — and
        for that reason it is machine-local and deliberately *not*
        serialized with the knowledge base (a saved artifact must not
        spawn process pools on whatever host later loads it).
    parallel_scan_threshold:
        Minimum candidate-pool size (total marginal cells at an order)
        for a sharded scan to engage.  Below it the per-shard dispatch
        and merge overhead dwarfs the scan itself, so the engine runs
        the serial kernel even when ``max_workers > 1`` — which also
        skips spawning workers entirely when every order stays small.
        The chosen path per order lands in
        :attr:`~repro.significance.kernels.DiscoveryProfile.scan_paths`.
        Machine-local like ``max_workers`` and likewise not serialized.
    transport:
        How sharded-scan tensors move between master and workers:
        ``"pipe"`` (pickle over the worker pipes), ``"shm"`` (zero-copy
        shared-memory segments), ``"tcp"`` (remote worker daemons — see
        ``worker_addresses``), or ``None`` — defer to the
        ``REPRO_PARALLEL_TRANSPORT`` environment variable, defaulting to
        shm where available.  Bit-identical results either way; machine-
        local like ``max_workers`` and likewise not serialized.
    worker_addresses:
        ``HOST:PORT`` addresses of remote ``repro worker`` daemons to
        shard scans across (each address is one pool slot).  A non-empty
        list implies the tcp transport; empty (the default) leaves
        remote execution to the ``tcp`` transport choice plus
        ``REPRO_WORKER_ADDRESSES``, degrading to local workers when no
        addresses are configured anywhere.  The most machine-local knob
        of all — it names sockets on a specific network — so like
        ``max_workers`` it is deliberately *not* serialized: a stored KB
        must never make a loading host dial someone else's workers.
    """

    max_order: int | None = None
    priors: MMLPriors = field(default_factory=MMLPriors.equal)
    solver: str = "ipf"
    tol: float = 1e-10
    max_sweeps: int = 500
    max_constraints: int | None = None
    given_constraints: tuple[CellConstraint, ...] = ()
    max_workers: int = 1
    parallel_scan_threshold: int = 512
    transport: str | None = None
    worker_addresses: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.given_constraints, tuple):
            object.__setattr__(
                self, "given_constraints", tuple(self.given_constraints)
            )
        if self.solver not in SOLVERS:
            raise DataError(
                f"unknown solver {self.solver!r}; choose one of {SOLVERS}"
            )
        if self.max_order is not None and self.max_order < 2:
            raise DataError(
                f"max_order must be >= 2 (or None), got {self.max_order}"
            )
        if self.max_constraints is not None and self.max_constraints < 0:
            raise DataError(
                f"max_constraints must be >= 0, got {self.max_constraints}"
            )
        if self.tol <= 0:
            raise DataError(f"tol must be positive, got {self.tol}")
        if self.max_sweeps < 1:
            raise DataError(f"max_sweeps must be >= 1, got {self.max_sweeps}")
        if self.max_workers < 1:
            raise DataError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.parallel_scan_threshold < 0:
            raise DataError(
                f"parallel_scan_threshold must be >= 0, got "
                f"{self.parallel_scan_threshold}"
            )
        if self.transport is not None and self.transport not in (
            "pipe",
            "shm",
            "tcp",
            "auto",
        ):
            raise DataError(
                f"unknown transport {self.transport!r}; choose 'pipe', "
                f"'shm', 'tcp', 'auto', or None"
            )
        if not isinstance(self.worker_addresses, tuple):
            object.__setattr__(
                self, "worker_addresses", tuple(self.worker_addresses)
            )
        for address in self.worker_addresses:
            if not isinstance(address, str) or ":" not in address:
                raise DataError(
                    f"worker address {address!r} is not of the form "
                    f"HOST:PORT"
                )

    def to_dict(self) -> dict:
        """JSON-ready dict (round-tripped in the knowledge-base format)."""
        return {
            "max_order": self.max_order,
            "priors": {
                "p_h1": self.priors.p_h1,
                "p_h2_prime": self.priors.p_h2_prime,
            },
            "solver": self.solver,
            "tol": self.tol,
            "max_sweeps": self.max_sweeps,
            "max_constraints": self.max_constraints,
            "given_constraints": [
                {
                    **cellkey_to_dict(given.key),
                    "probability": given.probability,
                }
                for given in self.given_constraints
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiscoveryConfig":
        """Inverse of :meth:`to_dict`."""
        try:
            priors = data.get("priors") or {}
            return cls(
                max_order=data.get("max_order"),
                priors=MMLPriors(
                    p_h1=float(priors.get("p_h1", 0.5)),
                    p_h2_prime=float(priors.get("p_h2_prime", 0.5)),
                ),
                solver=data.get("solver", "ipf"),
                tol=float(data.get("tol", 1e-10)),
                max_sweeps=int(data.get("max_sweeps", 500)),
                max_constraints=data.get("max_constraints"),
                given_constraints=tuple(
                    CellConstraint(
                        *cellkey_from_dict(item), float(item["probability"])
                    )
                    for item in data.get("given_constraints", [])
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(
                f"malformed discovery config dict: {error}"
            ) from None
