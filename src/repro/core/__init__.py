"""Public core: knowledge base, queries, rules, inference, validation."""

from repro.core.explain import Explanation, explain
from repro.core.inference import Conclusion, RuleEngine
from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.query import Query, QueryEngine, parse_assignment
from repro.core.rules import Rule, RuleGenerator, RuleSet
from repro.core.validation import (
    calibration_table,
    conditional_brier_score,
    cross_validate,
    holdout_log_loss,
    perplexity,
)

__all__ = [
    "Conclusion",
    "Explanation",
    "ProbabilisticKnowledgeBase",
    "Query",
    "QueryEngine",
    "Rule",
    "RuleEngine",
    "RuleGenerator",
    "RuleSet",
    "calibration_table",
    "conditional_brier_score",
    "cross_validate",
    "explain",
    "holdout_log_loss",
    "parse_assignment",
    "perplexity",
]
