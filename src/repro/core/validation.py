"""Model validation: holdout scoring, calibration, cross-validation.

The paper's 1986 evaluation stops at "the formula predicts the observed
values"; these are the diagnostics a modern user needs before trusting an
acquired knowledge base:

- :func:`holdout_log_loss` / :func:`perplexity` — out-of-sample predictive
  quality of the full joint;
- :func:`conditional_brier_score` — accuracy of the conditional queries an
  expert system will actually ask;
- :func:`calibration_table` — do rules that say "70%" fire 70% of the
  time?
- :func:`cross_validate` — k-fold stability of discovery itself (how many
  constraints, how consistent, what holdout score).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.exceptions import DataError
from repro.maxent.model import MaxEntModel


def holdout_log_loss(model: MaxEntModel, holdout: ContingencyTable) -> float:
    """Average negative log-likelihood per holdout sample (nats).

    Infinite if the model assigns zero probability to an observed cell.
    """
    if holdout.total == 0:
        raise DataError("holdout table is empty")
    joint = model.joint()
    counts = holdout.counts
    mask = counts > 0
    if (joint[mask] <= 0).any():
        return float("inf")
    return float(-(counts[mask] * np.log(joint[mask])).sum() / holdout.total)


def perplexity(model: MaxEntModel, holdout: ContingencyTable) -> float:
    """``exp(log loss)`` — effective number of equally-likely cells."""
    loss = holdout_log_loss(model, holdout)
    return float("inf") if loss == float("inf") else exp(loss)


def conditional_brier_score(
    model: MaxEntModel,
    holdout: ContingencyTable,
    target: str,
) -> float:
    """Brier score of ``P(target | all other attributes)`` on holdout.

    For every holdout sample (weighted by its cell count), the model
    predicts the distribution of the target attribute from the remaining
    attributes; the score is the mean squared error against the one-hot
    outcome.  Lower is better; a perfect oracle scores 0, the constant
    uniform predictor scores ``(K-1)/K``.
    """
    schema = holdout.schema
    target_attribute = schema.attribute(target)
    target_axis = schema.axis(target)
    joint = model.joint()
    counts = holdout.counts
    total = holdout.total
    if total == 0:
        raise DataError("holdout table is empty")

    # P(target | rest) for every joint cell, shaped like the joint.
    denominator = joint.sum(axis=target_axis, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        conditional = np.where(
            denominator > 0, joint / denominator, np.nan
        )

    score = 0.0
    for index in np.argwhere(counts > 0):
        index = tuple(int(i) for i in index)
        weight = counts[index] / total
        slicer = list(index)
        slicer[target_axis] = slice(None)
        predicted = conditional[tuple(slicer)]
        if np.isnan(predicted).any():
            # Evidence the model rules out entirely: maximal penalty.
            score += weight * 1.0
            continue
        outcome = np.zeros(target_attribute.cardinality)
        outcome[index[target_axis]] = 1.0
        score += weight * float(((predicted - outcome) ** 2).sum())
    return score


@dataclass
class CalibrationBin:
    """One reliability bin: predicted band vs observed frequency."""

    lower: float
    upper: float
    predicted_mean: float
    observed_rate: float
    weight: float


def calibration_table(
    model: MaxEntModel,
    holdout: ContingencyTable,
    target: str,
    value: str | int,
    bins: int = 5,
) -> list[CalibrationBin]:
    """Reliability diagram data for ``P(target=value | rest)``.

    Holdout samples are grouped by the model's predicted probability; a
    calibrated model's observed rate tracks the predicted mean bin by bin.
    Empty bins are omitted.
    """
    if bins < 2:
        raise DataError(f"need at least 2 bins, got {bins}")
    schema = holdout.schema
    target_axis = schema.axis(target)
    value_index = schema.attribute(target).index_of(value)
    joint = model.joint()
    denominator = joint.sum(axis=target_axis, keepdims=True)

    predictions: list[float] = []
    outcomes: list[float] = []
    weights: list[float] = []
    counts = holdout.counts
    for index in np.argwhere(counts > 0):
        index = tuple(int(i) for i in index)
        slicer = list(index)
        slicer[target_axis] = value_index
        denominator_here = float(
            denominator[tuple(slicer[:target_axis] + [0] + slicer[target_axis + 1 :])]
        )
        if denominator_here <= 0:
            continue
        predictions.append(float(joint[tuple(slicer)]) / denominator_here)
        outcomes.append(1.0 if index[target_axis] == value_index else 0.0)
        weights.append(float(counts[index]))

    edges = np.linspace(0.0, 1.0, bins + 1)
    table: list[CalibrationBin] = []
    predictions_array = np.array(predictions)
    outcomes_array = np.array(outcomes)
    weights_array = np.array(weights)
    total_weight = weights_array.sum()
    for lower, upper in zip(edges[:-1], edges[1:]):
        in_bin = (predictions_array >= lower) & (
            (predictions_array < upper) | (upper == 1.0)
        )
        weight = float(weights_array[in_bin].sum())
        if weight == 0:
            continue
        table.append(
            CalibrationBin(
                lower=float(lower),
                upper=float(upper),
                predicted_mean=float(
                    np.average(
                        predictions_array[in_bin],
                        weights=weights_array[in_bin],
                    )
                ),
                observed_rate=float(
                    np.average(
                        outcomes_array[in_bin], weights=weights_array[in_bin]
                    )
                ),
                weight=weight / float(total_weight),
            )
        )
    return table


@dataclass
class FoldResult:
    """Discovery outcome on one cross-validation fold."""

    fold: int
    num_constraints: int
    holdout_log_loss: float
    constraint_keys: frozenset


@dataclass
class CrossValidationResult:
    """Aggregate of a k-fold discovery validation."""

    folds: list[FoldResult]

    @property
    def mean_log_loss(self) -> float:
        return float(np.mean([f.holdout_log_loss for f in self.folds]))

    @property
    def mean_constraints(self) -> float:
        return float(np.mean([f.num_constraints for f in self.folds]))

    def constraint_stability(self) -> float:
        """Jaccard similarity of adopted constraints across fold pairs
        (1.0 = every fold finds the identical set)."""
        if len(self.folds) < 2:
            return 1.0
        scores = []
        for i, first in enumerate(self.folds):
            for second in self.folds[i + 1 :]:
                union = first.constraint_keys | second.constraint_keys
                if not union:
                    scores.append(1.0)
                    continue
                intersection = first.constraint_keys & second.constraint_keys
                scores.append(len(intersection) / len(union))
        return float(np.mean(scores))


def cross_validate(
    dataset: Dataset,
    k: int = 5,
    config: DiscoveryConfig | None = None,
    rng: np.random.Generator | None = None,
) -> CrossValidationResult:
    """k-fold cross-validation of the discovery pipeline.

    Each fold: discover on k-1 parts, score log loss on the held-out part,
    record the adopted constraint keys for stability analysis.
    """
    if k < 2:
        raise DataError(f"need at least 2 folds, got {k}")
    if len(dataset) < k:
        raise DataError(f"dataset of {len(dataset)} rows cannot make {k} folds")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(len(dataset))
    fold_indices = np.array_split(order, k)

    folds: list[FoldResult] = []
    for number, holdout_index in enumerate(fold_indices):
        train_index = np.concatenate(
            [f for i, f in enumerate(fold_indices) if i != number]
        )
        train = Dataset(dataset.schema, dataset.rows[train_index])
        holdout = Dataset(dataset.schema, dataset.rows[holdout_index])
        result = discover(train.to_contingency(), config)
        folds.append(
            FoldResult(
                fold=number,
                num_constraints=len(result.found),
                holdout_log_loss=holdout_log_loss(
                    result.model, holdout.to_contingency()
                ),
                constraint_keys=frozenset(c.key for c in result.found),
            )
        )
    return CrossValidationResult(folds=folds)
