"""Query explanation: which acquired constraints drive an answer.

The paper offers the extracted correlations as "clues for discovering
more causal explanations".  This module makes those clues explicit: for a
conditional query it reports how far the answer moves from the
independence baseline, and attributes the movement to the adopted
constraints by knock-out analysis — re-answering the query with each
constraint's factor neutralized (set to 1, i.e. Eq 116's "insignificant"
state) and reporting the swing.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.maxent.constraints import CellKey
from repro.maxent.model import MaxEntModel

Assignment = Mapping[str, str | int]


@dataclass(frozen=True)
class ConstraintInfluence:
    """Effect of one constraint on a query, by knock-out.

    ``swing`` is ``answer_with - answer_without``: positive means the
    constraint pushes the queried probability up.
    """

    key: CellKey
    answer_without: float
    swing: float

    def describe(self, schema) -> str:
        names, values = self.key
        labels = ", ".join(
            f"{n}={schema.attribute(n).value_at(v)}"
            for n, v in zip(names, values)
        )
        direction = "+" if self.swing >= 0 else ""
        return f"[{labels}] swing {direction}{self.swing:.4f}"


@dataclass
class Explanation:
    """Full account of a conditional query."""

    target: dict
    given: dict
    answer: float
    independence_answer: float
    influences: list[ConstraintInfluence]

    @property
    def total_shift(self) -> float:
        """How far the acquired knowledge moved the answer from
        independence."""
        return self.answer - self.independence_answer

    def ranked(self) -> list[ConstraintInfluence]:
        """Influences sorted by absolute swing, largest first."""
        return sorted(self.influences, key=lambda i: -abs(i.swing))

    def describe(self, schema) -> str:
        target_text = ", ".join(f"{k}={v}" for k, v in self.target.items())
        given_text = ", ".join(f"{k}={v}" for k, v in self.given.items())
        lines = [
            f"P({target_text} | {given_text}) = {self.answer:.4f}",
            f"  under independence: {self.independence_answer:.4f} "
            f"(shift {self.total_shift:+.4f})",
        ]
        for influence in self.ranked():
            if abs(influence.swing) < 5e-5:
                continue
            lines.append("  " + influence.describe(schema))
        return "\n".join(lines)


def explain(
    model: MaxEntModel,
    target: Assignment,
    given: Assignment,
) -> Explanation:
    """Explain ``P(target | given)`` by constraint knock-out.

    Raises :class:`QueryError` for zero-probability or conflicting
    evidence (same rules as :meth:`MaxEntModel.conditional`).
    """
    if not given:
        raise QueryError(
            "explanations are for conditional queries; supply evidence"
        )
    answer = model.conditional(target, given)

    # Under independence, evidence is irrelevant: the answer is the product
    # of the target attributes' first-order probabilities (which the model
    # carries exactly, since margins are always constrained).
    independence_answer = 1.0
    for name, value in target.items():
        if name in given:
            continue
        independence_answer *= model.probability({name: value})

    influences = []
    for key in model.cell_factors:
        ablated = model.copy()
        ablated.cell_factors = dict(model.cell_factors)
        ablated.cell_factors[key] = 1.0
        try:
            without = ablated.conditional(target, given)
        except QueryError:
            continue
        influences.append(
            ConstraintInfluence(
                key=key,
                answer_without=without,
                swing=answer - without,
            )
        )
    return Explanation(
        target=dict(target),
        given=dict(given),
        answer=answer,
        independence_answer=independence_answer,
        influences=influences,
    )
