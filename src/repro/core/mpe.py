"""Most-probable-explanation (MPE) core: argmax over a restricted joint.

One implementation of the "most likely full situation given what we know"
query, shared by :class:`~repro.core.query.QueryEngine` and every inference
backend so the argmax/normalization logic lives in exactly one place.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.data.schema import Schema
from repro.exceptions import QueryError


def most_probable_from_restricted(
    schema: Schema,
    restricted: np.ndarray,
    given: Mapping[str, int],
) -> tuple[dict[str, str], float]:
    """MPE from a table over the *free* attributes (schema order).

    ``restricted`` holds the (possibly unnormalized) mass of every joint
    cell consistent with the evidence; ``given`` maps evidence attribute
    names to value indices.  Returns ``(assignment labels, conditional
    probability)``.
    """
    restricted = np.asarray(restricted)
    evidence_mass = float(restricted.sum())
    if evidence_mass <= 0:
        raise QueryError(
            f"evidence {schema.labels_of(given)} has zero probability"
        )
    flat_argmax = int(np.argmax(restricted))
    free_names = [n for n in schema.names if n not in given]
    free_index = (
        np.unravel_index(flat_argmax, restricted.shape)
        if restricted.ndim
        else ()
    )
    assignment = dict(given)
    for name, value in zip(free_names, free_index):
        assignment[name] = int(value)
    labels = schema.labels_of(assignment)
    probability = float(restricted.ravel()[flat_argmax]) / evidence_mass
    return labels, probability


def most_probable_from_joint(
    schema: Schema,
    joint: np.ndarray,
    given: Mapping[str, int],
) -> tuple[dict[str, str], float]:
    """MPE by slicing the evidence out of a full joint tensor."""
    slicer = tuple(
        given.get(attribute.name, slice(None)) for attribute in schema
    )
    return most_probable_from_restricted(
        schema, np.asarray(joint[slicer]), given
    )
