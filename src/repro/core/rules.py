"""IF-THEN rules with probabilities (the paper's expert-system output).

    P(A | B, C) = p   ≡   IF B AND C THEN A (with probability p)

"The system ... does not generate rules explicitly.  It generates and
stores significant joint probabilities instead.  Particular conditional
probabilities can be calculated from this information as required."
This module performs that calculation on demand: a :class:`RuleGenerator`
turns a fitted model into an explicit :class:`RuleSet` for consumption by
a conventional rule engine (:mod:`repro.core.inference`).

Each rule also carries *support* (probability of the condition — how often
the rule fires) and *lift* (posterior / prior of the conclusion — how much
the evidence moves the needle), the standard quality measures for induced
probabilistic rules.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from itertools import combinations, product

from repro.data.schema import Schema
from repro.exceptions import QueryError
from repro.maxent.model import MaxEntModel


@dataclass(frozen=True)
class Rule:
    """``IF conditions THEN conclusion (with probability p)``.

    Attributes
    ----------
    conditions:
        Labelled condition assignment (the rule's IF part), stored as a
        sorted tuple of ``(attribute, value)`` pairs for hashability.
    conclusion:
        Single ``(attribute, value)`` pair (the THEN part).
    probability:
        ``P(conclusion | conditions)``.
    support:
        ``P(conditions)`` — fraction of the population the rule applies to.
    lift:
        ``P(conclusion | conditions) / P(conclusion)``.
    """

    conditions: tuple[tuple[str, str], ...]
    conclusion: tuple[str, str]
    probability: float
    support: float
    lift: float

    def condition_dict(self) -> dict[str, str]:
        return dict(self.conditions)

    def applies_to(self, facts: Mapping[str, str]) -> bool:
        """True if every condition is satisfied by the given facts."""
        return all(facts.get(name) == value for name, value in self.conditions)

    def describe(self) -> str:
        condition_text = " AND ".join(
            f"{name}={value}" for name, value in self.conditions
        )
        name, value = self.conclusion
        return (
            f"IF {condition_text} THEN {name}={value} "
            f"(p={self.probability:.3f}, support={self.support:.3f}, "
            f"lift={self.lift:.2f})"
        )


class RuleSet:
    """An ordered, filterable collection of rules."""

    def __init__(self, rules: Sequence[Rule] = ()):
        self._rules = list(rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> Rule:
        return self._rules[index]

    def add(self, rule: Rule) -> None:
        self._rules.append(rule)

    def about(self, attribute: str) -> "RuleSet":
        """Rules concluding about the named attribute."""
        return RuleSet([r for r in self._rules if r.conclusion[0] == attribute])

    def filter(
        self,
        min_probability: float = 0.0,
        min_support: float = 0.0,
        min_lift: float = 0.0,
    ) -> "RuleSet":
        """Rules meeting all thresholds."""
        return RuleSet(
            [
                r
                for r in self._rules
                if r.probability >= min_probability
                and r.support >= min_support
                and r.lift >= min_lift
            ]
        )

    def sorted_by_lift(self) -> "RuleSet":
        return RuleSet(sorted(self._rules, key=lambda r: -r.lift))

    def sorted_by_probability(self) -> "RuleSet":
        return RuleSet(sorted(self._rules, key=lambda r: -r.probability))

    def matching(self, facts: Mapping[str, str]) -> "RuleSet":
        """Rules whose conditions are all satisfied by the facts."""
        return RuleSet([r for r in self._rules if r.applies_to(facts)])

    def describe(self) -> str:
        if not self._rules:
            return "(empty rule set)"
        return "\n".join(rule.describe() for rule in self._rules)


def rules_to_json(rules: "RuleSet") -> list[dict]:
    """JSON-ready list of rule dicts (for shipping to an external shell)."""
    return [
        {
            "if": dict(rule.conditions),
            "then": {rule.conclusion[0]: rule.conclusion[1]},
            "probability": rule.probability,
            "support": rule.support,
            "lift": rule.lift,
        }
        for rule in rules
    ]


def rules_from_json(data: list[dict]) -> "RuleSet":
    """Inverse of :func:`rules_to_json`."""
    from repro.exceptions import DataError

    rules = RuleSet()
    for number, item in enumerate(data):
        try:
            then = item["then"]
            if len(then) != 1:
                raise DataError(
                    f"rule {number}: THEN must name exactly one attribute"
                )
            (conclusion,) = then.items()
            rules.add(
                Rule(
                    conditions=tuple(sorted(item["if"].items())),
                    conclusion=conclusion,
                    probability=float(item["probability"]),
                    support=float(item["support"]),
                    lift=float(item["lift"]),
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(f"malformed rule {number}: {error}") from None
    return rules


def write_rules_csv(rules: "RuleSet", path) -> None:
    """Write rules as CSV (conditions; conclusion; p; support; lift)."""
    import csv
    from pathlib import Path

    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["conditions", "conclusion", "probability", "support", "lift"]
        )
        for rule in rules:
            writer.writerow(
                [
                    " AND ".join(f"{n}={v}" for n, v in rule.conditions),
                    f"{rule.conclusion[0]}={rule.conclusion[1]}",
                    f"{rule.probability:.6f}",
                    f"{rule.support:.6f}",
                    f"{rule.lift:.6f}",
                ]
            )


class RuleGenerator:
    """Generates IF-THEN rules from a fitted model.

    Two generation modes:

    - :meth:`from_constraints`: one rule family per discovered constraint —
      the paper's intent, where each significant joint probability yields
      the conditionals it directly informs.
    - :meth:`exhaustive`: every rule with up to ``max_conditions``
      condition attributes, filtered by thresholds — the "compile the whole
      knowledge base" mode.
    """

    def __init__(self, model: MaxEntModel):
        self.model = model
        self.schema: Schema = model.schema

    def exhaustive(
        self,
        max_conditions: int = 2,
        min_probability: float = 0.0,
        min_support: float = 0.0,
        min_lift: float = 0.0,
    ) -> RuleSet:
        """All rules with 1..max_conditions conditions meeting thresholds."""
        rules = RuleSet()
        names = self.schema.names
        for conclusion_name in names:
            other_names = [n for n in names if n != conclusion_name]
            for size in range(1, max_conditions + 1):
                for condition_names in combinations(other_names, size):
                    for rule in self._rules_for(
                        condition_names, conclusion_name
                    ):
                        rules.add(rule)
        return rules.filter(min_probability, min_support, min_lift)

    def from_constraints(
        self, min_probability: float = 0.0, min_support: float = 0.0
    ) -> RuleSet:
        """Rules induced by the model's adopted cell constraints.

        For each constrained cell over attributes ``S`` and each attribute
        ``t`` in ``S``, emit ``IF S \\ {t} (at the cell's values) THEN t``.
        """
        rules = RuleSet()
        seen: set[tuple] = set()
        for names, values in self.model.cell_factors:
            for position, conclusion_name in enumerate(names):
                condition_names = tuple(
                    n for i, n in enumerate(names) if i != position
                )
                if not condition_names:
                    continue
                condition_values = tuple(
                    self.schema.attribute(n).value_at(values[i])
                    for i, n in enumerate(names)
                    if i != position
                )
                conclusion_value = self.schema.attribute(
                    conclusion_name
                ).value_at(values[position])
                key = (condition_names, condition_values, conclusion_name)
                if key in seen:
                    continue
                seen.add(key)
                rule = self._build_rule(
                    dict(zip(condition_names, condition_values)),
                    conclusion_name,
                    conclusion_value,
                )
                if rule is not None:
                    rules.add(rule)
        return rules.filter(min_probability, min_support)

    # -- internals ----------------------------------------------------------------

    def _rules_for(
        self, condition_names: tuple[str, ...], conclusion_name: str
    ) -> Iterator[Rule]:
        value_lists = [
            self.schema.attribute(n).values for n in condition_names
        ]
        conclusion_attribute = self.schema.attribute(conclusion_name)
        for condition_values in product(*value_lists):
            conditions = dict(zip(condition_names, condition_values))
            for conclusion_value in conclusion_attribute.values:
                rule = self._build_rule(
                    conditions, conclusion_name, conclusion_value
                )
                if rule is not None:
                    yield rule

    def _build_rule(
        self,
        conditions: dict[str, str],
        conclusion_name: str,
        conclusion_value: str,
    ) -> Rule | None:
        support = self.model.probability(conditions)
        if support <= 0.0:
            return None
        try:
            probability = self.model.conditional(
                {conclusion_name: conclusion_value}, conditions
            )
        except QueryError:
            return None
        prior = self.model.probability({conclusion_name: conclusion_value})
        lift = probability / prior if prior > 0 else float("inf")
        return Rule(
            conditions=tuple(sorted(conditions.items())),
            conclusion=(conclusion_name, conclusion_value),
            probability=probability,
            support=support,
            lift=lift,
        )
