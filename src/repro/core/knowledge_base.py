"""The public facade: fit, query, update as new data lands, serialize.

:class:`ProbabilisticKnowledgeBase` is what a downstream user touches:

>>> kb = ProbabilisticKnowledgeBase.from_data(table)
>>> kb.query("CANCER=yes | SMOKING=smoker")
0.186...
>>> kb.p("CANCER=yes").given("SMOKING=smoker").value()
0.186...
>>> kb.update(next_batch)            # warm-started rediscovery
Revision(number=1, mode='warm', ...)
>>> kb.rules(min_probability=0.6).describe()
'IF ...'

It bundles the discovery result (model + adopted constraints + audit
trace), query sessions (compiled plans, memoized marginals, pluggable
inference backends — see :mod:`repro.api`), rule generation, and the
incremental lifecycle: :meth:`update` absorbs a delta batch through the
``discovery`` estimator's warm-start path and swaps the refined factors
into the *same* model object, so every open session self-invalidates via
:meth:`~repro.maxent.model.MaxEntModel.fingerprint` instead of being
rebuilt.  Versioned JSON round-trips the model — and, since format 3, the
discovery audit trail and revision history, which is what keeps a loaded
knowledge base updatable.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.query import Query
from repro.core.rules import RuleGenerator, RuleSet
from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.io import schema_from_dict, schema_to_dict
from repro.data.streaming import TableBuilder
from repro.discovery.config import DiscoveryConfig
from repro.discovery.trace import (
    DiscoveryResult,
    result_from_dict,
    result_to_dict,
)
from repro.estimators.discovery import DiscoveryEstimator
from repro.exceptions import DataError
from repro.maxent.constraints import (
    CellConstraint,
    CellKey,
    cellkey_from_dict,
    cellkey_to_dict,
)
from repro.maxent.model import MaxEntModel

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.api pulls in repro.core.query, and a
    # module-level import here would close an import cycle through the
    # package __init__.
    from repro.api.builder import ProbabilityExpression
    from repro.api.session import QuerySession

Assignment = Mapping[str, str | int]

# Serialization format history:
#   1 — original layout, no version field (accepted on read, migrated).
#   2 — identical layout plus the explicit "format_version" marker.
#   3 — adds the revision history and (when available) the discovery audit
#       trail with its training table, making loaded KBs updatable.
FORMAT_VERSION = 3


@dataclass(frozen=True)
class Revision:
    """One entry of a knowledge base's lifecycle history.

    Attributes
    ----------
    number:
        0 for the initial fit, then 1, 2, ... per update.
    mode:
        ``"initial"`` (first fit), ``"warm"`` (incremental rediscovery),
        ``"cold"`` (full refit fallback), or ``"noop"`` (empty delta).
    sample_size:
        Total samples behind the model after this revision.
    added_samples:
        Samples this revision absorbed.
    constraints_added / constraints_dropped:
        Cell-constraint keys that appeared / disappeared in this revision.
    """

    number: int
    mode: str
    sample_size: int
    added_samples: int
    constraints_added: tuple[CellKey, ...] = field(default=())
    constraints_dropped: tuple[CellKey, ...] = field(default=())

    def to_dict(self) -> dict:
        return {
            "number": self.number,
            "mode": self.mode,
            "sample_size": self.sample_size,
            "added_samples": self.added_samples,
            "constraints_added": [
                cellkey_to_dict(key) for key in self.constraints_added
            ],
            "constraints_dropped": [
                cellkey_to_dict(key) for key in self.constraints_dropped
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Revision":
        return cls(
            number=int(data["number"]),
            mode=str(data["mode"]),
            sample_size=int(data["sample_size"]),
            added_samples=int(data["added_samples"]),
            constraints_added=tuple(
                cellkey_from_dict(item)
                for item in data.get("constraints_added", [])
            ),
            constraints_dropped=tuple(
                cellkey_from_dict(item)
                for item in data.get("constraints_dropped", [])
            ),
        )


class ProbabilisticKnowledgeBase:
    """A fitted probabilistic knowledge base.

    Build with :meth:`from_data` (runs the full discovery pipeline) or
    :meth:`from_model` (wrap an existing model).
    """

    def __init__(
        self,
        model: MaxEntModel,
        sample_size: int,
        discovery: DiscoveryResult | None = None,
        revisions: list[Revision] | None = None,
    ):
        self.model = model
        self.sample_size = int(sample_size)
        self.discovery = discovery
        self.revisions: list[Revision] = list(revisions or [])
        self._default_session: QuerySession | None = None
        self._estimator: DiscoveryEstimator | None = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_data(
        cls,
        data: ContingencyTable | Dataset,
        config: DiscoveryConfig | None = None,
    ) -> "ProbabilisticKnowledgeBase":
        """Run the paper's full pipeline on observed data."""
        if isinstance(data, Dataset):
            table = data.to_contingency()
        elif isinstance(data, ContingencyTable):
            table = data
        else:
            raise DataError(
                f"from_data expects a Dataset or ContingencyTable, got "
                f"{type(data).__name__}"
            )
        estimator = DiscoveryEstimator(config)
        estimator.fit(table)
        result = estimator.result
        kb = cls(
            result.model,
            table.total,
            discovery=result,
            revisions=[
                Revision(
                    number=0,
                    mode="initial",
                    sample_size=table.total,
                    added_samples=table.total,
                    constraints_added=tuple(
                        cell.key for cell in result.found
                    ),
                )
            ],
        )
        kb._estimator = estimator
        return kb

    @classmethod
    def from_model(
        cls, model: MaxEntModel, sample_size: int
    ) -> "ProbabilisticKnowledgeBase":
        """Wrap an already-fitted model (e.g. loaded from JSON)."""
        return cls(model, sample_size)

    # -- queries ------------------------------------------------------------------

    @property
    def schema(self):
        return self.model.schema

    def session(
        self,
        backend: str = "auto",
        cache_size: int | None = None,
        max_workers: int = 1,
        worker_addresses=(),
    ) -> QuerySession:
        """Open a new query session against this knowledge base's model.

        Sessions compile queries into plans, memoize marginals, and pick an
        inference backend (``"auto"``, ``"dense"``, ``"elimination"``, or
        any registered plugin).  ``max_workers > 1`` shards
        :meth:`~repro.api.session.QuerySession.batch` calls across worker
        processes with per-worker caches (close the session to stop
        them); ``worker_addresses`` shards them across remote ``repro
        worker`` daemons instead.  The single-query convenience methods
        below all delegate to a shared default session.
        """
        from repro.api.session import QuerySession

        if cache_size is None:
            return QuerySession(
                self.model,
                backend=backend,
                max_workers=max_workers,
                worker_addresses=worker_addresses,
            )
        return QuerySession(
            self.model,
            backend=backend,
            cache_size=cache_size,
            max_workers=max_workers,
            worker_addresses=worker_addresses,
        )

    @property
    def _session(self) -> QuerySession:
        if self._default_session is None:
            self._default_session = self.session()
        return self._default_session

    def query(self, text: str) -> float:
        """Evaluate ``"A=x | B=y"`` style query strings."""
        return self._session.ask(text)

    def query_many(
        self,
        queries: Iterable[str | Query],
        backend: str | None = None,
        max_workers: int = 1,
        worker_addresses=(),
    ) -> list[float]:
        """Batch-evaluate many queries, sharing marginal computations.

        With ``backend`` the batch runs in a fresh session on that backend;
        otherwise it uses the default session (and its warm caches).
        ``max_workers > 1`` shards the batch across worker processes for
        this call (pool started and stopped per call — hold a
        :meth:`session` with ``max_workers`` to amortize startup across
        batches); ``worker_addresses`` shards it across remote ``repro
        worker`` daemons over TCP instead.  Results keep input order and
        are bit-identical either way.
        """
        if max_workers > 1 or worker_addresses:
            with self.session(
                backend=backend or "auto",
                max_workers=max_workers,
                worker_addresses=worker_addresses,
            ) as parallel_session:
                return parallel_session.batch(queries)
        if backend is not None:
            return self.session(backend=backend).batch(queries)
        return self._session.batch(queries)

    def probability(
        self, target: Assignment, given: Assignment | None = None
    ) -> float:
        """``P(target | given)`` with labelled assignments."""
        return self._session.probability(target, given)

    def distribution(
        self, attribute: str, given: Assignment | None = None
    ) -> dict[str, float]:
        """Conditional distribution of one attribute."""
        return self._session.distribution(attribute, given)

    def most_probable(
        self, given: Assignment | None = None
    ) -> tuple[dict[str, str], float]:
        """Most probable complete assignment given the evidence (MPE).

        Returns ``(assignment labels, conditional probability)``.
        """
        return self._session.most_probable(given)

    def p(self, target: str) -> "ProbabilityExpression":
        """Fluent query builder: ``kb.p("A=x").given("B=y").value()``."""
        from repro.api.builder import ProbabilityExpression

        return ProbabilityExpression(self._session, target)

    # -- incremental lifecycle -----------------------------------------------------

    @property
    def can_update(self) -> bool:
        """True when this knowledge base can absorb new data.

        Requires the training table — held by the estimator behind
        :meth:`from_data`, or carried in a format-3 file's discovery trace.
        """
        return self._estimator is not None or (
            self.discovery is not None and self.discovery.table is not None
        )

    def _require_estimator(self) -> DiscoveryEstimator:
        if self._estimator is None:
            if self.discovery is None:
                raise DataError(
                    "this knowledge base cannot be updated: it has no "
                    "discovery trace (built with from_model, or loaded from "
                    "a pre-format-3 file); refit with from_data or load a "
                    "format-3 file saved with its audit trail"
                )
            self._estimator = DiscoveryEstimator.from_result(self.discovery)
        return self._estimator

    def update(self, data) -> Revision:
        """Absorb a batch of new observations into the fitted model.

        ``data`` may be a :class:`ContingencyTable`, :class:`Dataset`, or
        an iterable of samples/records (use :meth:`ingest` for a
        :class:`TableBuilder`).  The delta is merged into the training
        table and discovery reruns warm-started from the current
        constraints and ``a`` values, falling back to a cold refit when
        the new data contradict an old constraint.  The refined factors
        are swapped into the *same* model object, so open sessions and
        backend caches self-invalidate through
        :meth:`~repro.maxent.model.MaxEntModel.fingerprint` on their next
        operation.  Returns the appended :class:`Revision`.
        """
        if isinstance(data, TableBuilder):
            # A builder passed here would be re-absorbed in full on every
            # call (update does not reset it) — a silent double-count.
            raise DataError(
                "pass a TableBuilder to ingest(), which absorbs its counts "
                "and resets it; or pass builder.snapshot() for a one-off "
                "copy"
            )
        estimator = self._require_estimator()
        before_n = self.sample_size
        report = estimator.update(data)
        if report.mode != "noop":
            result = estimator.result
            self.model.absorb(result.model)
            # Keep one model object end to end: the result (and therefore
            # the estimator's next warm start) now points at the live,
            # just-refreshed model the sessions hold.
            result.model = self.model
            self.discovery = result
            self.sample_size = estimator.table.total
        revision = Revision(
            number=len(self.revisions),
            mode=report.mode,
            sample_size=self.sample_size,
            added_samples=self.sample_size - before_n,
            constraints_added=report.added,
            constraints_dropped=report.dropped,
        )
        self.revisions.append(revision)
        return revision

    def ingest(self, builder: TableBuilder) -> Revision:
        """Absorb a :class:`TableBuilder`'s accumulated counts and reset it.

        The builder keeps its schema and goes back to zero so it can keep
        accumulating the next window while this knowledge base serves the
        refreshed model.
        """
        if not isinstance(builder, TableBuilder):
            raise DataError(
                f"ingest expects a TableBuilder, got {type(builder).__name__}"
            )
        revision = self.update(builder.snapshot())
        builder.reset()
        return revision

    # -- knowledge ----------------------------------------------------------------

    @property
    def constraints(self) -> tuple[CellConstraint, ...]:
        """The significant joint probabilities the system stores."""
        if self.discovery is not None:
            return self.discovery.found
        return tuple(
            CellConstraint(names, values, self._cell_probability(names, values))
            for names, values in self.model.cell_factors
        )

    def _cell_probability(self, names, values) -> float:
        marginal = self.model.marginal(names)
        return float(marginal[values])

    def rules(
        self,
        min_probability: float = 0.0,
        min_support: float = 0.0,
        max_conditions: int = 2,
        constrained_only: bool = False,
    ) -> RuleSet:
        """Generate IF-THEN rules with probabilities.

        With ``constrained_only`` the rules come solely from discovered
        constraints (the paper's emphasis); otherwise all rules up to
        ``max_conditions`` conditions are enumerated and filtered.
        """
        generator = RuleGenerator(self.model)
        if constrained_only:
            return generator.from_constraints(min_probability, min_support)
        return generator.exhaustive(
            max_conditions=max_conditions,
            min_probability=min_probability,
            min_support=min_support,
        )

    def summary(self) -> str:
        """Readable report: schema, constraints, entropy."""
        lines = [
            f"ProbabilisticKnowledgeBase over {self.schema!r}",
            f"fitted from N={self.sample_size} samples",
            f"significant joint probabilities: {len(self.model.cell_factors)}",
        ]
        for names, values in self.model.cell_factors:
            probability = self._cell_probability(names, values)
            labels = ", ".join(
                f"{n}={self.schema.attribute(n).value_at(v)}"
                for n, v in zip(names, values)
            )
            lines.append(f"  P({labels}) = {probability:.4f}")
        return "\n".join(lines)

    # -- serialization ------------------------------------------------------------

    def to_dict(self, include_audit: bool = True) -> dict:
        """JSON-ready dict: version, schema, factors, audit trail, history.

        The discovery block (training table, adopted constraints, config,
        every scan with its Table-1 test rows) ships by default, so the
        saved file is a complete audit record — and stays updatable after
        :meth:`load`.  Pass ``include_audit=False`` to omit it: the file
        then carries only the fitted model (the pre-format-3 "ship
        without the training data" shape — smaller, discloses no counts,
        but no longer updatable after loading).
        """
        if not include_audit:
            discovery = None
        elif self.discovery is not None:
            discovery = result_to_dict(self.discovery)
        else:
            discovery = None
        return {
            "format_version": FORMAT_VERSION,
            "schema": schema_to_dict(self.schema),
            "sample_size": self.sample_size,
            "a0": self.model.a0,
            "margin_factors": {
                name: vector.tolist()
                for name, vector in self.model.margin_factors.items()
            },
            "cell_factors": [
                {
                    "attributes": list(names),
                    "values": list(values),
                    "a": factor,
                }
                for (names, values), factor in self.model.cell_factors.items()
            ],
            "table_factors": [
                {"attributes": list(names), "a": array.tolist()}
                for names, array in self.model.table_factors.items()
            ],
            "revisions": [revision.to_dict() for revision in self.revisions],
            "discovery": discovery,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProbabilisticKnowledgeBase":
        """Inverse of :meth:`to_dict`.

        Accepts the current format and every older one (v1 dicts predate
        the ``format_version`` field and are migrated on read).  Dicts
        written by a *newer* library version are rejected with a clear
        error rather than misread.
        """
        data = _migrate(data)
        try:
            schema = schema_from_dict(data["schema"])
            margin_factors = {
                name: np.asarray(vector, dtype=float)
                for name, vector in data["margin_factors"].items()
            }
            cell_factors = {
                (
                    tuple(item["attributes"]),
                    tuple(int(v) for v in item["values"]),
                ): float(item["a"])
                for item in data["cell_factors"]
            }
            table_factors = {
                tuple(item["attributes"]): np.asarray(item["a"], dtype=float)
                for item in data.get("table_factors", [])
            }
            model = MaxEntModel(
                schema,
                margin_factors,
                cell_factors,
                a0=float(data["a0"]),
                table_factors=table_factors,
            )
            sample_size = int(data["sample_size"])
            revisions = [
                Revision.from_dict(item)
                for item in data.get("revisions", [])
            ]
            discovery_data = data.get("discovery")
            discovery = (
                result_from_dict(discovery_data, model)
                if discovery_data is not None
                else None
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(f"malformed knowledge base dict: {error}") from None
        return cls(
            model, sample_size, discovery=discovery, revisions=revisions
        )

    def save(self, path: str | Path, include_audit: bool = True) -> None:
        """Write the knowledge base to a JSON file, atomically.

        The write goes to a temporary sibling file and is renamed into
        place, so a crash mid-write cannot truncate an existing file —
        which, since format 3 carries the training table, may be the only
        copy of the accumulated data.  ``include_audit=False`` writes the
        model only — see :meth:`to_dict` for the trade-off.
        """
        path = Path(path)
        payload = json.dumps(
            self.to_dict(include_audit=include_audit), indent=2
        )
        # A unique temp name per call: concurrent savers must not share
        # one scratch file, or the rename could install interleaved JSON.
        descriptor, temporary = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(payload)
            # mkstemp creates 0600 scratch files; keep the destination's
            # existing permissions (or a fresh umask-honoring default)
            # instead of silently tightening them on every resave.
            try:
                mode = path.stat().st_mode & 0o777
            except FileNotFoundError:
                current_umask = os.umask(0)
                os.umask(current_umask)
                mode = 0o666 & ~current_umask
            os.chmod(temporary, mode)
            os.replace(temporary, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temporary)
            raise

    @classmethod
    def load(cls, path: str | Path) -> "ProbabilisticKnowledgeBase":
        """Read a knowledge base from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _migrate_v1_to_v2(data: dict) -> dict:
    """v1 predates the version field; the payload layout is unchanged."""
    data = dict(data)
    data["format_version"] = 2
    return data


def _migrate_v2_to_v3(data: dict) -> dict:
    """v2 carried no lifecycle data: empty history, no audit trail."""
    data = dict(data)
    data["format_version"] = 3
    data.setdefault("revisions", [])
    data.setdefault("discovery", None)
    return data


# One entry per historical version, applied in sequence on read.
_MIGRATIONS = {1: _migrate_v1_to_v2, 2: _migrate_v2_to_v3}


def _migrate(data: dict) -> dict:
    """Bring a serialized dict up to :data:`FORMAT_VERSION`."""
    if not isinstance(data, dict):
        raise DataError(
            f"malformed knowledge base dict: expected a dict, got "
            f"{type(data).__name__}"
        )
    version = data.get("format_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise DataError(
            f"malformed knowledge base dict: bad format_version {version!r}"
        )
    if version > FORMAT_VERSION:
        raise DataError(
            f"knowledge base has format_version {version}, but this "
            f"library only understands versions up to {FORMAT_VERSION}; "
            f"upgrade repro to read it"
        )
    while version < FORMAT_VERSION:
        data = _MIGRATIONS[version](data)
        version = data["format_version"]
    return data
