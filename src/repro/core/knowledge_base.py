"""The public facade: fit once, then query / extract rules / serialize.

:class:`ProbabilisticKnowledgeBase` is what a downstream user touches:

>>> kb = ProbabilisticKnowledgeBase.from_data(table)
>>> kb.query("CANCER=yes | SMOKING=smoker")
0.186...
>>> kb.p("CANCER=yes").given("SMOKING=smoker").value()
0.186...
>>> kb.query_many(["CANCER=yes", "CANCER=yes | SMOKING=smoker"])
[0.126..., 0.186...]
>>> kb.rules(min_probability=0.6).describe()
'IF ...'

It bundles the discovery result (model + adopted constraints + audit
trace), query sessions (compiled plans, memoized marginals, pluggable
inference backends — see :mod:`repro.api`), and rule generation, and
round-trips through versioned JSON so an acquired knowledge base can ship
without its training data.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.query import Query
from repro.core.rules import RuleGenerator, RuleSet
from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.io import schema_from_dict, schema_to_dict
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.discovery.trace import DiscoveryResult
from repro.exceptions import DataError
from repro.maxent.constraints import CellConstraint
from repro.maxent.model import MaxEntModel

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.api pulls in repro.core.query, and a
    # module-level import here would close an import cycle through the
    # package __init__.
    from repro.api.builder import ProbabilityExpression
    from repro.api.session import QuerySession

Assignment = Mapping[str, str | int]

# Serialization format history:
#   1 — original layout, no version field (accepted on read, migrated).
#   2 — identical layout plus the explicit "format_version" marker.
FORMAT_VERSION = 2


class ProbabilisticKnowledgeBase:
    """A fitted probabilistic knowledge base.

    Build with :meth:`from_data` (runs the full discovery pipeline) or
    :meth:`from_model` (wrap an existing model).
    """

    def __init__(
        self,
        model: MaxEntModel,
        sample_size: int,
        discovery: DiscoveryResult | None = None,
    ):
        self.model = model
        self.sample_size = int(sample_size)
        self.discovery = discovery
        self._default_session: QuerySession | None = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_data(
        cls,
        data: ContingencyTable | Dataset,
        config: DiscoveryConfig | None = None,
    ) -> "ProbabilisticKnowledgeBase":
        """Run the paper's full pipeline on observed data."""
        if isinstance(data, Dataset):
            table = data.to_contingency()
        elif isinstance(data, ContingencyTable):
            table = data
        else:
            raise DataError(
                f"from_data expects a Dataset or ContingencyTable, got "
                f"{type(data).__name__}"
            )
        result = discover(table, config)
        return cls(result.model, table.total, discovery=result)

    @classmethod
    def from_model(
        cls, model: MaxEntModel, sample_size: int
    ) -> "ProbabilisticKnowledgeBase":
        """Wrap an already-fitted model (e.g. loaded from JSON)."""
        return cls(model, sample_size)

    # -- queries ------------------------------------------------------------------

    @property
    def schema(self):
        return self.model.schema

    def session(
        self, backend: str = "auto", cache_size: int | None = None
    ) -> QuerySession:
        """Open a new query session against this knowledge base's model.

        Sessions compile queries into plans, memoize marginals, and pick an
        inference backend (``"auto"``, ``"dense"``, ``"elimination"``, or
        any registered plugin).  The single-query convenience methods below
        all delegate to a shared default session.
        """
        from repro.api.session import QuerySession

        if cache_size is None:
            return QuerySession(self.model, backend=backend)
        return QuerySession(self.model, backend=backend, cache_size=cache_size)

    @property
    def _session(self) -> QuerySession:
        if self._default_session is None:
            self._default_session = self.session()
        return self._default_session

    def query(self, text: str) -> float:
        """Evaluate ``"A=x | B=y"`` style query strings."""
        return self._session.ask(text)

    def query_many(
        self,
        queries: Iterable[str | Query],
        backend: str | None = None,
    ) -> list[float]:
        """Batch-evaluate many queries, sharing marginal computations.

        With ``backend`` the batch runs in a fresh session on that backend;
        otherwise it uses the default session (and its warm caches).
        """
        if backend is not None:
            return self.session(backend=backend).batch(queries)
        return self._session.batch(queries)

    def probability(
        self, target: Assignment, given: Assignment | None = None
    ) -> float:
        """``P(target | given)`` with labelled assignments."""
        return self._session.probability(target, given)

    def distribution(
        self, attribute: str, given: Assignment | None = None
    ) -> dict[str, float]:
        """Conditional distribution of one attribute."""
        return self._session.distribution(attribute, given)

    def most_probable(
        self, given: Assignment | None = None
    ) -> tuple[dict[str, str], float]:
        """Most probable complete assignment given the evidence (MPE).

        Returns ``(assignment labels, conditional probability)``.
        """
        return self._session.most_probable(given)

    def p(self, target: str) -> "ProbabilityExpression":
        """Fluent query builder: ``kb.p("A=x").given("B=y").value()``."""
        from repro.api.builder import ProbabilityExpression

        return ProbabilityExpression(self._session, target)

    # -- knowledge ----------------------------------------------------------------

    @property
    def constraints(self) -> tuple[CellConstraint, ...]:
        """The significant joint probabilities the system stores."""
        if self.discovery is not None:
            return self.discovery.found
        return tuple(
            CellConstraint(names, values, self._cell_probability(names, values))
            for names, values in self.model.cell_factors
        )

    def _cell_probability(self, names, values) -> float:
        marginal = self.model.marginal(names)
        return float(marginal[values])

    def rules(
        self,
        min_probability: float = 0.0,
        min_support: float = 0.0,
        max_conditions: int = 2,
        constrained_only: bool = False,
    ) -> RuleSet:
        """Generate IF-THEN rules with probabilities.

        With ``constrained_only`` the rules come solely from discovered
        constraints (the paper's emphasis); otherwise all rules up to
        ``max_conditions`` conditions are enumerated and filtered.
        """
        generator = RuleGenerator(self.model)
        if constrained_only:
            return generator.from_constraints(min_probability, min_support)
        return generator.exhaustive(
            max_conditions=max_conditions,
            min_probability=min_probability,
            min_support=min_support,
        )

    def summary(self) -> str:
        """Readable report: schema, constraints, entropy."""
        lines = [
            f"ProbabilisticKnowledgeBase over {self.schema!r}",
            f"fitted from N={self.sample_size} samples",
            f"significant joint probabilities: {len(self.model.cell_factors)}",
        ]
        for names, values in self.model.cell_factors:
            probability = self._cell_probability(names, values)
            labels = ", ".join(
                f"{n}={self.schema.attribute(n).value_at(v)}"
                for n, v in zip(names, values)
            )
            lines.append(f"  P({labels}) = {probability:.4f}")
        return "\n".join(lines)

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready dict: format version, schema, factors, sample size."""
        return {
            "format_version": FORMAT_VERSION,
            "schema": schema_to_dict(self.schema),
            "sample_size": self.sample_size,
            "a0": self.model.a0,
            "margin_factors": {
                name: vector.tolist()
                for name, vector in self.model.margin_factors.items()
            },
            "cell_factors": [
                {
                    "attributes": list(names),
                    "values": list(values),
                    "a": factor,
                }
                for (names, values), factor in self.model.cell_factors.items()
            ],
            "table_factors": [
                {"attributes": list(names), "a": array.tolist()}
                for names, array in self.model.table_factors.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProbabilisticKnowledgeBase":
        """Inverse of :meth:`to_dict`.

        Accepts the current format and every older one (v1 dicts predate
        the ``format_version`` field and are migrated on read).  Dicts
        written by a *newer* library version are rejected with a clear
        error rather than misread.
        """
        data = _migrate(data)
        try:
            schema = schema_from_dict(data["schema"])
            margin_factors = {
                name: np.asarray(vector, dtype=float)
                for name, vector in data["margin_factors"].items()
            }
            cell_factors = {
                (
                    tuple(item["attributes"]),
                    tuple(int(v) for v in item["values"]),
                ): float(item["a"])
                for item in data["cell_factors"]
            }
            table_factors = {
                tuple(item["attributes"]): np.asarray(item["a"], dtype=float)
                for item in data.get("table_factors", [])
            }
            model = MaxEntModel(
                schema,
                margin_factors,
                cell_factors,
                a0=float(data["a0"]),
                table_factors=table_factors,
            )
            sample_size = int(data["sample_size"])
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(f"malformed knowledge base dict: {error}") from None
        return cls.from_model(model, sample_size)

    def save(self, path: str | Path) -> None:
        """Write the knowledge base to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "ProbabilisticKnowledgeBase":
        """Read a knowledge base from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _migrate_v1_to_v2(data: dict) -> dict:
    """v1 predates the version field; the payload layout is unchanged."""
    data = dict(data)
    data["format_version"] = 2
    return data


# One entry per historical version, applied in sequence on read.
_MIGRATIONS = {1: _migrate_v1_to_v2}


def _migrate(data: dict) -> dict:
    """Bring a serialized dict up to :data:`FORMAT_VERSION`."""
    if not isinstance(data, dict):
        raise DataError(
            f"malformed knowledge base dict: expected a dict, got "
            f"{type(data).__name__}"
        )
    version = data.get("format_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise DataError(
            f"malformed knowledge base dict: bad format_version {version!r}"
        )
    if version > FORMAT_VERSION:
        raise DataError(
            f"knowledge base has format_version {version}, but this "
            f"library only understands versions up to {FORMAT_VERSION}; "
            f"upgrade repro to read it"
        )
    while version < FORMAT_VERSION:
        data = _MIGRATIONS[version](data)
        version = data["format_version"]
    return data
