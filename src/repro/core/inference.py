"""A small probabilistic expert-system shell consuming the induced rules.

The paper positions the extracted probabilities as the knowledge base of a
probabilistic expert system.  This module closes that loop: a
:class:`RuleEngine` holds a :class:`~repro.core.rules.RuleSet`, accepts
facts, and infers conclusions with probabilities and an explanation trace.

When several rules conclude about the same attribute, the engine prefers
the applicable rule with the *most specific* condition set (most
conditions), breaking ties by higher support — the standard specificity
heuristic for probabilistic production rules.  This is deliberately a
*rule-level* approximation; exact posteriors come from the model itself via
:class:`~repro.core.query.QueryEngine`, and the tests compare the two.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.rules import Rule, RuleSet
from repro.exceptions import QueryError


@dataclass(frozen=True)
class Conclusion:
    """One inferred attribute value with its probability and justification."""

    attribute: str
    value: str
    probability: float
    rule: Rule

    def describe(self) -> str:
        return (
            f"{self.attribute}={self.value} (p={self.probability:.3f}) "
            f"via [{self.rule.describe()}]"
        )


class RuleEngine:
    """Forward-chaining inference over probabilistic IF-THEN rules."""

    def __init__(self, rules: RuleSet):
        self.rules = rules

    def applicable(self, facts: Mapping[str, str]) -> RuleSet:
        """Rules whose conditions are fully satisfied by the facts."""
        return self.rules.matching(facts)

    def conclude(
        self, facts: Mapping[str, str], attribute: str
    ) -> Conclusion:
        """Best conclusion about one attribute given the facts.

        Picks, among applicable rules concluding about ``attribute``, the
        most probable value according to the most specific rule available
        for each value.  Raises :class:`QueryError` when no applicable rule
        mentions the attribute.
        """
        if attribute in facts:
            raise QueryError(
                f"attribute {attribute!r} is already known: "
                f"{facts[attribute]!r}"
            )
        candidates = self.applicable(facts).about(attribute)
        if not len(candidates):
            raise QueryError(
                f"no applicable rule concludes about {attribute!r} given "
                f"facts {dict(facts)}"
            )
        best_per_value: dict[str, Rule] = {}
        for rule in candidates:
            value = rule.conclusion[1]
            incumbent = best_per_value.get(value)
            if incumbent is None or self._more_specific(rule, incumbent):
                best_per_value[value] = rule
        value, rule = max(
            best_per_value.items(), key=lambda item: item[1].probability
        )
        return Conclusion(
            attribute=attribute,
            value=value,
            probability=rule.probability,
            rule=rule,
        )

    def forward_chain(
        self, facts: Mapping[str, str], threshold: float = 0.5
    ) -> list[Conclusion]:
        """Derive all conclusions with probability above ``threshold``.

        Repeatedly applies :meth:`conclude` to every unknown attribute,
        asserting conclusions that clear the threshold as new facts, until
        a fixed point.  Returns the conclusions in derivation order.
        """
        known = dict(facts)
        derived: list[Conclusion] = []
        attributes = {rule.conclusion[0] for rule in self.rules}
        progress = True
        while progress:
            progress = False
            for attribute in sorted(attributes - set(known)):
                try:
                    conclusion = self.conclude(known, attribute)
                except QueryError:
                    continue
                if conclusion.probability >= threshold:
                    known[conclusion.attribute] = conclusion.value
                    derived.append(conclusion)
                    progress = True
        return derived

    @staticmethod
    def _more_specific(challenger: Rule, incumbent: Rule) -> bool:
        if len(challenger.conditions) != len(incumbent.conditions):
            return len(challenger.conditions) > len(incumbent.conditions)
        return challenger.support > incumbent.support
