"""Probability queries against a fitted model.

The paper's headline: once the significant joint probabilities are found,
"any probability relation associated with the data" follows, since a
conditional probability is a ratio of joints::

    P(A | B, C) = P(A, B, C) / P(B, C)

Queries accept labelled assignments (``{"CANCER": "yes"}``) or compact
strings (``"CANCER=yes"``).  Two evaluation paths exist: the dense joint
tensor (default, exact for small schemas) and Appendix-B variable
elimination (for wide schemas); both agree to machine precision.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.data.schema import Schema
from repro.exceptions import QueryError
from repro.maxent import elimination
from repro.maxent.model import MaxEntModel

Assignment = Mapping[str, str | int]


def parse_assignment(schema: Schema, text: str) -> dict[str, str]:
    """Parse ``"A=x, B=y"`` into a labelled assignment, validating names.

    Raises :class:`QueryError` on malformed terms, unknown attributes or
    unknown values.
    """
    assignment: dict[str, str] = {}
    for raw in text.split(","):
        term = raw.strip()
        if not term:
            continue
        if "=" not in term:
            raise QueryError(
                f"malformed query term {term!r}; expected ATTRIBUTE=value"
            )
        name, _, value = term.partition("=")
        name = name.strip()
        value = value.strip()
        try:
            attribute = schema.attribute(name)
            attribute.index_of(value)
        except Exception as error:
            raise QueryError(str(error)) from None
        if name in assignment:
            raise QueryError(f"attribute {name!r} assigned twice in {text!r}")
        assignment[name] = value
    if not assignment:
        raise QueryError(f"no assignments found in {text!r}")
    return assignment


@dataclass(frozen=True)
class Query:
    """A conditional probability question ``P(target | given)``."""

    target: dict[str, str | int]
    given: dict[str, str | int] = field(default_factory=dict)

    @classmethod
    def parse(cls, schema: Schema, text: str) -> "Query":
        """Parse ``"A=x | B=y, C=z"`` (the bar and evidence optional).

        An attribute may not appear on both sides of the bar: ``P(A=x |
        A=y)`` is contradictory and ``P(A=x | A=x)`` is trivially 1, so
        both are rejected as almost certainly mistakes.
        """
        target_text, bar, given_text = text.partition("|")
        target = parse_assignment(schema, target_text)
        given = parse_assignment(schema, given_text) if bar else {}
        overlap = sorted(set(target) & set(given))
        if overlap:
            raise QueryError(
                f"attributes {overlap} appear in both target and evidence "
                f"of {text!r}; an attribute may only be queried or "
                f"conditioned on, not both"
            )
        return cls(target=target, given=given)

    def describe(self) -> str:
        target = ", ".join(f"{k}={v}" for k, v in self.target.items())
        if not self.given:
            return f"P({target})"
        given = ", ".join(f"{k}={v}" for k, v in self.given.items())
        return f"P({target} | {given})"


class QueryEngine:
    """Evaluates queries against a model, dense or factored.

    Parameters
    ----------
    model:
        The fitted maxent model.
    method:
        ``"dense"`` materializes the joint tensor (default; exact and fast
        for small schemas).  ``"elimination"`` uses the Appendix-B factored
        computation and never builds the joint.
    """

    def __init__(self, model: MaxEntModel, method: str = "dense"):
        if method not in ("dense", "elimination"):
            raise QueryError(
                f"unknown query method {method!r}; use 'dense' or 'elimination'"
            )
        self.model = model
        self.method = method

    def probability(self, target: Assignment, given: Assignment | None = None) -> float:
        """``P(target | given)``; marginal probability when no evidence."""
        given = dict(given or {})
        if self.method == "dense":
            if not given:
                return self.model.probability(target)
            return self.model.conditional(target, given)
        return elimination.query(self.model, target, given)

    def evaluate(self, query: Query) -> float:
        """Evaluate a parsed :class:`Query`."""
        return self.probability(query.target, query.given)

    def ask(self, text: str) -> float:
        """Parse-and-evaluate a query string like ``"B=yes | A=smoker"``."""
        return self.evaluate(Query.parse(self.model.schema, text))

    def most_probable(
        self, given: Assignment | None = None
    ) -> tuple[dict[str, str], float]:
        """Most probable complete assignment consistent with the evidence.

        Returns ``(assignment labels, conditional probability)`` — the MPE
        query of a probabilistic expert system ("what is the most likely
        full situation given what we know?").
        """
        from repro.core.mpe import most_probable_from_joint

        schema = self.model.schema
        fixed = schema.indices_of(dict(given or {}))
        return most_probable_from_joint(schema, self.model.joint(), fixed)

    def distribution(
        self, name: str, given: Assignment | None = None
    ) -> dict[str, float]:
        """Full conditional distribution of one attribute.

        Returns ``{value label: P(name=value | given)}``; probabilities sum
        to 1 (up to floating point).
        """
        attribute = self.model.schema.attribute(name)
        if given and name in given:
            raise QueryError(
                f"cannot ask for the distribution of {name!r}: it is fixed "
                f"by the evidence"
            )
        return {
            value: self.probability({name: value}, given)
            for value in attribute.values
        }
