"""Canonical JSON and content addressing for stored artifacts.

Everything durable in :mod:`repro.store` is addressed by the sha256 of
its *canonical* JSON encoding: keys sorted, separators compact, floats
rendered with Python's shortest-round-trip ``repr`` (exact for IEEE-754
binary64 on every supported platform), non-ASCII passed through as
UTF-8.  Two dicts that differ only in key insertion order therefore
canonicalize to the same bytes — which is what makes the hash a content
address rather than a serialization accident.

``NaN``/``Infinity`` are rejected outright (``allow_nan=False``): they
have no interoperable JSON encoding, so letting one through would make
an artifact that other readers cannot parse.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_bytes", "canonical_json", "content_hash"]


def canonical_json(obj) -> str:
    """The canonical (sorted, compact, round-trip-exact) JSON encoding."""
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
        allow_nan=False,
    )


def canonical_bytes(obj) -> bytes:
    """:func:`canonical_json` as UTF-8 bytes (what gets hashed/stored)."""
    return canonical_json(obj).encode("utf-8")


def content_hash(obj) -> str:
    """sha256 hex digest of the canonical encoding — the content address.

    Stable across platforms, processes, and dict insertion orders; two
    objects hash equal exactly when their canonical JSON is byte-equal.
    """
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()
